/**
 * @file
 * Hybrid (migration-path) walker: guest radix page tables, host ECPTs
 * (Section 6, Figure 8). Each of the up-to-five host translations of a
 * nested radix walk is replaced by a single parallel hECPT probe
 * group, pruned by an hCWC whose PTE usage depends on the walk row:
 * rows 1-2 (gL4/gL3) always use PTE hCWT entries, row 3 (gL2) uses
 * them adaptively, and rows 4-5 (gL1/data) use PUD/PMD info only.
 */

#ifndef NECPT_WALK_HYBRID_HH
#define NECPT_WALK_HYBRID_HH

#include "mmu/cwc.hh"
#include "mmu/walk_caches.hh"
#include "walk/plan.hh"
#include "walk/walker.hh"

namespace necpt
{

/**
 * Walker for the "Nested Hybrid" configurations of Table 1.
 */
class HybridWalker : public Walker
{
  public:
    HybridWalker(NestedSystem &system, MemoryHierarchy &memory,
                 int core_id)
        : Walker(system, memory, core_id),
          gpwc(2, 5, 5), // Table 2 hybrid: 16 PWC entries total
          ntlb(24),
          hcwc({16, 16, 2}) // Table 2: 16PTE + 16PMD + 2PUD
    {}

    WalkResult translate(Addr gva, Cycles now) override;

    std::string name() const override { return "NestedHybrid"; }

    const AdaptiveCwcController &adaptiveController() const
    {
        return adaptive;
    }

    std::size_t
    invalidateTranslationCaches(Addr gva, std::uint64_t bytes, Addr gpa,
                                std::uint64_t gpa_bytes) override
    {
        std::size_t n = gpwc.invalidateRange(gva, bytes);
        if (gpa_bytes > 0) {
            n += ntlb.invalidateRange(gpa, gpa_bytes);
            n += hcwc.invalidateRange(gpa, gpa_bytes);
        }
        return n;
    }

  private:
    /**
     * One parallel hECPT translation of @p gpa (the Figure-8 "Step 3"
     * building block). @p row is 1..5 from gL4 down to the data page.
     */
    Translation hostProbe(Addr gpa, int row, Cycles &t, int &accesses);

    PageWalkCache gpwc;
    NestedTlb ntlb;
    CuckooWalkCache hcwc;
    AdaptiveCwcController adaptive;
    std::vector<Addr> probe_buf;
    std::vector<Addr> refill_buf;
};

} // namespace necpt

#endif // NECPT_WALK_HYBRID_HH
