/**
 * @file
 * The Section-9.6 comparison baselines:
 *
 *  - AgilePagingWalker: idealized Agile Paging (Gandhi et al.,
 *    ISCA'16): at most four sequential memory references (the guest
 *    chain at host addresses), all radix caching, zero hypervisor cost.
 *  - PomTlbWalker: POM-TLB (Ryoo et al., ISCA'17) with a perfect page
 *    size predictor: one in-DRAM TLB probe; misses fall back to a full
 *    nested radix walk.
 *  - FlatNestedWalker: flat nested page tables (Ahn et al., ISCA'12):
 *    guest radix + flat host table, at most 9 sequential references.
 */

#ifndef NECPT_WALK_BASELINES_HH
#define NECPT_WALK_BASELINES_HH

#include <memory>

#include "mmu/pom_tlb.hh"
#include "mmu/walk_caches.hh"
#include "walk/nested_radix.hh"
#include "walk/walker.hh"

namespace necpt
{

/**
 * Idealized Agile Paging.
 */
class AgilePagingWalker : public Walker
{
  public:
    AgilePagingWalker(NestedSystem &system, MemoryHierarchy &memory,
                      int core_id)
        : Walker(system, memory, core_id), pwc(2, 5, 32)
    {}

    WalkResult translate(Addr gva, Cycles now) override;

    std::string name() const override { return "AgilePagingIdeal"; }

    std::size_t
    invalidateTranslationCaches(Addr gva, std::uint64_t bytes, Addr,
                                std::uint64_t) override
    {
        return pwc.invalidateRange(gva, bytes);
    }

  private:
    PageWalkCache pwc;
};

/**
 * POM-TLB with perfect size prediction.
 */
class PomTlbWalker : public Walker
{
  public:
    PomTlbWalker(NestedSystem &system, MemoryHierarchy &memory,
                 int core_id, PomTlb &pom_tlb)
        : Walker(system, memory, core_id), pom(pom_tlb),
          fallback(system, memory, core_id)
    {}

    WalkResult translate(Addr gva, Cycles now) override;

    std::string name() const override { return "POM-TLB"; }

    const PomTlb &pomTlb() const { return pom; }

    /** The fallback's walks are folded into ours; keep its ledger in
     *  the same state so the fold conserves. */
    void
    setAttribution(bool on) override
    {
        Walker::setAttribution(on);
        fallback.setAttribution(on);
    }

    /** The shared POM-TLB is scrubbed by the coherence controller
     *  directly; only the fallback walker's private caches are ours. */
    std::size_t
    invalidateTranslationCaches(Addr gva, std::uint64_t bytes, Addr gpa,
                                std::uint64_t gpa_bytes) override
    {
        return fallback.invalidateTranslationCaches(gva, bytes, gpa,
                                                    gpa_bytes);
    }

  private:
    PomTlb &pom;
    NestedRadixWalker fallback;
};

/**
 * Flat nested page tables.
 */
class FlatNestedWalker : public Walker
{
  public:
    FlatNestedWalker(NestedSystem &system, MemoryHierarchy &memory,
                     int core_id)
        : Walker(system, memory, core_id), gpwc(2, 5, 32), ntlb(24)
    {}

    WalkResult translate(Addr gva, Cycles now) override;

    std::string name() const override { return "FlatNested"; }

    std::size_t
    invalidateTranslationCaches(Addr gva, std::uint64_t bytes, Addr gpa,
                                std::uint64_t gpa_bytes) override
    {
        std::size_t n = gpwc.invalidateRange(gva, bytes);
        if (gpa_bytes > 0)
            n += ntlb.invalidateRange(gpa, gpa_bytes);
        return n;
    }

  private:
    PageWalkCache gpwc;
    NestedTlb ntlb;
};

} // namespace necpt

#endif // NECPT_WALK_BASELINES_HH
