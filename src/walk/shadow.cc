#include "walk/shadow.hh"

#include "common/log.hh"

namespace necpt
{

ShadowPagingWalker::ShadowPagingWalker(NestedSystem &system,
                                       MemoryHierarchy &memory,
                                       int core_id, Cycles vmexit_cycles)
    : Walker(system, memory, core_id), pwc(2, 5, 32),
      vmexit_cost(vmexit_cycles)
{
    // The shadow tree is hypervisor state in host-physical memory.
    shadow = std::make_unique<RadixPageTable>(sys.hostPool());
}

std::uint64_t
ShadowPagingWalker::shadowBytes() const
{
    return shadow->structureBytes();
}

std::size_t
ShadowPagingWalker::invalidateTranslationCaches(Addr gva,
                                                std::uint64_t bytes,
                                                Addr, std::uint64_t)
{
    std::size_t count = pwc.invalidateRange(gva, bytes);
    const Addr last = gva + (bytes ? bytes - 1 : 0);
    Addr va = pageBase(gva, PageSize::Page4K);
    while (va <= last) {
        const Translation t9n = shadow->lookup(va);
        if (t9n.valid) {
            shadow->unmap(pageBase(va, t9n.size), t9n.size);
            ++count;
            va = pageBase(va, t9n.size) + pageBytes(t9n.size);
        } else {
            va += pageBytes(PageSize::Page4K);
        }
    }
    return count;
}

WalkResult
ShadowPagingWalker::translate(Addr gva, Cycles now)
{
    WalkResult result;
    Cycles t = now + pwc.latency();
    charge(AttrCause::Probe, pwc.latency());
    int accesses = 0;

    std::vector<RadixStep> steps;
    Translation t9n = shadow->walk(gva, steps);
    if (!t9n.valid) {
        // Shadow fault: the hypervisor walks the guest and host tables
        // in software and installs the composed translation. We charge
        // the VM-exit round trip; the software walk's memory accesses
        // are subsumed in it.
        ++vmexits;
        t += vmexit_cost;
        charge(AttrCause::Compute, vmexit_cost);
        const Translation full = sys.fullTranslate(gva);
        NECPT_ASSERT(full.valid);
        shadow->map(pageBase(gva, full.size), full.pa, full.size);
        steps.clear();
        t9n = shadow->walk(gva, steps);
        NECPT_ASSERT(t9n.valid);
    }

    const int skip_through = pwcSkipLevel(pwc, steps, gva);
    for (const RadixStep &step : steps) {
        if (step.level >= skip_through)
            continue;
        t += seqAccess(step.entry_addr, t);
        ++accesses;
        if (step.level >= 2 && !step.leaf)
            pwc.fill(step.level, gva);
    }

    result.translation = t9n;
    finishWalk(result, now, t, accesses);
    return result;
}

} // namespace necpt
