/**
 * @file
 * Nested radix walker: the full two-dimensional Figure-2 walk with up
 * to 24 sequential memory references, accelerated by a guest PWC
 * (gL4..gL2 entries), a nested PWC for the host levels (hL4..hL1), and
 * a Nested TLB caching gPA->hPA translations of guest page-table pages.
 */

#ifndef NECPT_WALK_NESTED_RADIX_HH
#define NECPT_WALK_NESTED_RADIX_HH

#include "mmu/walk_caches.hh"
#include "walk/walker.hh"

namespace necpt
{

/**
 * Walker for the "Nested Radix" configurations of Table 1.
 */
class NestedRadixWalker : public Walker
{
  public:
    NestedRadixWalker(NestedSystem &system, MemoryHierarchy &memory,
                      int core_id)
        : Walker(system, memory, core_id),
          gpwc(2, 5, 32),   // Table 2: PWC, 3 levels x 32 entries
          npwc(1, 5, 16),   // Table 2: NPWC, levels x 16 entries
          ntlb(24)
    {}

    WalkResult translate(Addr gva, Cycles now) override;

    std::string name() const override { return "NestedRadix"; }

    const char *metricsSlug() const override { return "nested_radix"; }

    void
    registerMetrics(MetricsRegistry &reg,
                    const std::string &prefix) override
    {
        Walker::registerMetrics(reg, prefix);
        for (int l = gpwc.minLevel(); l <= gpwc.maxLevel(); ++l)
            reg.addHitMiss(prefix + "pwc.guest.l" + std::to_string(l),
                           &gpwc.stats(l));
        for (int l = npwc.minLevel(); l <= npwc.maxLevel(); ++l)
            reg.addHitMiss(prefix + "pwc.nested.l" + std::to_string(l),
                           &npwc.stats(l));
        reg.addHitMiss(prefix + "ntlb", &ntlb.stats(),
                       "nested TLB (gPA->hPA of guest PT pages)");
    }

    NestedTlb &nestedTlb() { return ntlb; }
    PageWalkCache &guestPwc() { return gpwc; }
    PageWalkCache &nestedPwc() { return npwc; }

    std::size_t
    invalidateTranslationCaches(Addr gva, std::uint64_t bytes, Addr gpa,
                                std::uint64_t gpa_bytes) override
    {
        std::size_t n = gpwc.invalidateRange(gva, bytes);
        if (gpa_bytes > 0) {
            n += npwc.invalidateRange(gpa, gpa_bytes);
            n += ntlb.invalidateRange(gpa, gpa_bytes);
        }
        return n;
    }

  private:
    /**
     * Host-dimension walk translating @p gpa, pruned by the NPWC.
     * Advances @p t and @p accesses; returns the host translation.
     */
    Translation hostWalk(Addr gpa, Cycles &t, int &accesses);

    PageWalkCache gpwc;
    PageWalkCache npwc;
    NestedTlb ntlb;
};

} // namespace necpt

#endif // NECPT_WALK_NESTED_RADIX_HH
