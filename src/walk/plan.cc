#include "walk/plan.hh"

#include <bit>
#include <optional>

namespace necpt
{

namespace
{

/**
 * Consult one CWC level for @p va.
 * @return the current descriptor on a CWC hit; nullopt on a miss (or
 *         when the level has no CWT at all). @p missed distinguishes a
 *         refillable miss from a structurally absent level.
 */
std::optional<CwtDescriptor>
consultLevel(const EcptPageTable &pt, CuckooWalkCache &cwc, Addr va,
             PageSize level, const PlanOptions &options, bool &missed)
{
    const CuckooWalkTable *cwt = pt.cwtOf(level);
    if (!cwt)
        return std::nullopt;

    const bool is_pte = level == PageSize::Page4K;
    const bool is_pmd = level == PageSize::Page2M;

    auto cached = cwc.lookup(level, cwt->entryKey(va));
    if (options.adaptive && (is_pte || is_pmd))
        options.adaptive->record(options.now, level, cached.has_value());

    if (!cached) {
        missed = true;
        return std::nullopt;
    }
    // The CWC tracks which entries are resident; the OS keeps resident
    // entries coherent with CWT updates (it owns both), so a hit reads
    // the *current* descriptor rather than a stale snapshot.
    return cwt->query(va).value_or(CwtDescriptor{});
}

} // namespace

WalkKind
classifyPlan(const EcptProbePlan &plan, int ways)
{
    int probes = 0;
    for (unsigned m : plan.way_mask)
        probes += std::popcount(m);
    const int tables = plan.tablesProbed();
    if (probes <= 1)
        return WalkKind::Direct;
    if (tables == 1)
        return WalkKind::Size;
    if (tables == 2)
        return WalkKind::Partial;
    (void)ways;
    return WalkKind::Complete;
}

EcptProbePlan
planEcptWalk(const EcptPageTable &pt, CuckooWalkCache &cwc, Addr va,
             const PlanOptions &options)
{
    EcptProbePlan plan;
    const unsigned all = pt.allWays();
    const int pud = static_cast<int>(PageSize::Page1G);
    const int pmd = static_cast<int>(PageSize::Page2M);
    const int pte = static_cast<int>(PageSize::Page4K);

    // Default: everything unknown, probe all tables.
    plan.way_mask = {all, all, all};

    // What the consulted upper levels allow below them. Unknown means
    // unrestricted.
    bool may_2m = true;
    bool may_4k = true;

    // PUD level.
    const auto pud_desc = consultLevel(pt, cwc, va, PageSize::Page1G,
                                       options, plan.cwc_missed[pud]);
    if (pud_desc) {
        if (pud_desc->present) {
            plan.way_mask = {0, 0, 1u << pud_desc->way};
            plan.kind = classifyPlan(plan, pt.config().ways);
            return plan;
        }
        plan.way_mask[pud] = 0;
        if (pud_desc->hasSmaller()) {
            may_2m = pud_desc->smaller_2m;
            may_4k = pud_desc->smaller_4k;
        }
        // A descriptor with nothing mapped leaves the conservative
        // defaults (the walk will fault functionally; callers prevent
        // this by faulting pages in first).
    }

    // PMD level (skipped entirely when the PUD ruled out 2MB pages).
    if (may_2m) {
        const auto pmd_desc = consultLevel(
            pt, cwc, va, PageSize::Page2M, options,
            plan.cwc_missed[pmd]);
        if (pmd_desc) {
            if (pmd_desc->present) {
                // Mapped by a 2MB page: nothing above or below.
                plan.way_mask = {0, 1u << pmd_desc->way, 0};
                plan.kind = classifyPlan(plan, pt.config().ways);
                return plan;
            }
            plan.way_mask[pmd] = 0;
            if (pmd_desc->hasSmaller())
                may_4k = true;
        }
    } else {
        plan.way_mask[pmd] = 0;
    }

    // PTE level.
    if (!may_4k) {
        plan.way_mask[pte] = 0;
    } else if (options.use_pte_info && pt.hasPteCwt()) {
        const auto pte_desc = consultLevel(
            pt, cwc, va, PageSize::Page4K, options,
            plan.cwc_missed[pte]);
        if (pte_desc && pte_desc->present)
            plan.way_mask[pte] = 1u << pte_desc->way;
    }

    plan.kind = classifyPlan(plan, pt.config().ways);
    return plan;
}

std::size_t
appendPlannedProbes(const EcptPageTable &pt, Addr va,
                    const EcptProbePlan &plan, std::vector<Addr> &out)
{
    const std::size_t before = out.size();
    for (int s = 0; s < num_page_sizes; ++s) {
        if (plan.way_mask[s])
            pt.probeAddrs(va, all_page_sizes[s], plan.way_mask[s], out);
    }
    return out.size() - before;
}

void
chargeProbePhase(WalkerStats &stats, int step, const BatchResult &batch,
                 CycleLedger *ledger)
{
    stats.mmu_requests.inc(static_cast<std::uint64_t>(batch.requests));
    if (step >= 0) {
        stats.step_sum[step] +=
            static_cast<std::uint64_t>(batch.requests);
        stats.step_cnt[step] += 1;
        stats.step_lat[step] += batch.latency;
    }
    if (ledger)
        chargeMemBreakdown(*ledger, batch.bd);
}

BatchResult
executeProbePhase(MemoryHierarchy &mem, int core, WalkerStats &stats,
                  int step, AddrSpan addrs, Cycles now,
                  CycleLedger *ledger)
{
    const BatchResult br = mem.batchAccess(addrs, now, core);
    chargeProbePhase(stats, step, br, ledger);
    return br;
}

void
computeSpecProbes(const EcptPageTable &pt, Addr va,
                  std::vector<Addr> &scratch, SpecProbeSet &out)
{
    out.ok = false;
    const int ways = pt.config().ways;
    if (ways < 1 || ways > SpecProbeSet::max_plan_ways)
        return;
    for (int s = 0; s < num_page_sizes; ++s) {
        scratch.clear();
        pt.probeAddrs(va, all_page_sizes[s], (1u << ways) - 1, scratch);
        // probeAddrs emits, per way in ascending order, one address per
        // live generation — uniform across ways — so the per-way count
        // is the quotient.
        const std::size_t per =
            scratch.size() / static_cast<std::size_t>(ways);
        if (per < 1 || per > SpecProbeSet::max_gens
            || scratch.size() != per * static_cast<std::size_t>(ways))
            return;
        for (int w = 0; w < ways; ++w) {
            out.count[s][w] = static_cast<std::uint8_t>(per);
            for (std::size_t g = 0; g < per; ++g)
                out.addr[s][w][g] =
                    scratch[static_cast<std::size_t>(w) * per + g];
        }
        for (int w = ways; w < SpecProbeSet::max_plan_ways; ++w)
            out.count[s][w] = 0;
    }
    out.ok = true;
}

void
computeSpecWalkPlan(const NestedSystem &sys, Addr gva,
                    std::uint64_t stamp, std::vector<Addr> &scratch,
                    SpecWalkPlan &out)
{
    out.valid = false;
    out.stamp = stamp;
    out.gva = gva;
    out.guest.ok = false;
    out.host3.ok = false;
    out.guest_tr = Translation{};
    out.full_tr = Translation{};
    out.gpa_data = 0;
    const EcptPageTable *guest = sys.guestEcpt();
    const EcptPageTable *host = sys.hostEcpt();
    if (!guest || !host)
        return;
    computeSpecProbes(*guest, gva, scratch, out.guest);
    out.guest_tr = sys.guestTranslate(gva);
    if (out.guest_tr.valid) {
        out.gpa_data = out.guest_tr.apply(gva);
        computeSpecProbes(*host, out.gpa_data, scratch, out.host3);
    }
    out.full_tr = sys.peekFullTranslate(gva);
    out.valid = true;
}

std::size_t
appendSpecProbes(const SpecProbeSet &set, const EcptProbePlan &plan,
                 std::vector<Addr> &out)
{
    const std::size_t before = out.size();
    for (int s = 0; s < num_page_sizes; ++s) {
        const unsigned mask = plan.way_mask[s];
        if (!mask)
            continue;
        for (int w = 0; w < SpecProbeSet::max_plan_ways; ++w) {
            if (!(mask & (1u << w)))
                continue;
            for (int g = 0; g < set.count[s][w]; ++g)
                out.push_back(set.addr[s][w][g]);
        }
    }
    return out.size() - before;
}

void
collectCwcRefills(const EcptPageTable &pt, CuckooWalkCache &cwc, Addr va,
                  const EcptProbePlan &plan, const PlanOptions &options,
                  std::vector<Addr> &fetch_addrs)
{
    for (int s = 0; s < num_page_sizes; ++s) {
        if (!plan.cwc_missed[s])
            continue;
        const auto level = all_page_sizes[s];
        if (level == PageSize::Page4K && !options.use_pte_info)
            continue;
        const CuckooWalkTable *cwt = pt.cwtOf(level);
        if (!cwt || !cwc.caches(level))
            continue;
        // Hardware fetches the (2-way) CWT entry...
        cwt->entryProbeAddrs(va, fetch_addrs);
        // ...and installs it. The CWC records residency; descriptor
        // bits are read through the coherent software CWT at use time,
        // so the stored value is just a marker.
        cwc.fill(level, cwt->entryKey(va), 1);
    }
}

} // namespace necpt
