#include "walk/hybrid.hh"

#include "common/log.hh"

namespace necpt
{

Translation
HybridWalker::hostProbe(Addr gpa, int row, Cycles &t, int &accesses)
{
    EcptPageTable &host = *sys.hostEcpt();
    const Translation h = sys.hostTranslate(gpa);

    // Row policy for PTE hCWT usage (Section 6).
    bool use_pte = false;
    AdaptiveCwcController *controller = nullptr;
    if (row <= 2) {
        use_pte = host.hasPteCwt();
    } else if (row == 3) {
        use_pte = host.hasPteCwt() && adaptive.pteCachingEnabled();
        controller = &adaptive;
    }

    t += hcwc.latency() + hash_latency;
    charge(AttrCause::Probe, hcwc.latency());
    charge(AttrCause::Compute, hash_latency);
    PlanOptions options;
    options.use_pte_info = use_pte;
    options.adaptive = controller;
    options.now = t;
    const EcptProbePlan plan = planEcptWalk(host, hcwc, gpa, options);
    stats_.host_kind[static_cast<int>(plan.kind)].inc();

    probe_buf.clear();
    appendPlannedProbes(host, gpa, plan, probe_buf);
    // Hybrid walks have no fixed three-step structure: step -1 skips
    // the per-step tallies.
    const BatchResult br =
        executeProbePhase(mem, core, stats_, -1, probe_buf, t, &ledger_);
    t += br.latency;
    accesses += br.requests;

    refill_buf.clear();
    collectCwcRefills(host, hcwc, gpa, plan, options, refill_buf);
    if (!refill_buf.empty())
        backgroundAccess(refill_buf, t);

    return h;
}

WalkResult
HybridWalker::translate(Addr gva, Cycles now)
{
    WalkResult result;
    std::vector<RadixStep> gsteps;
    RadixPageTable *gtable = sys.guestRadix();
    NECPT_ASSERT(gtable != nullptr);
    const Translation guest = gtable->walk(gva, gsteps);
    NECPT_ASSERT(guest.valid);

    Cycles t = now + gpwc.latency();
    charge(AttrCause::Probe, gpwc.latency());
    int accesses = 0;

    const int skip_through = pwcSkipLevel(gpwc, gsteps, gva);

    for (const RadixStep &step : gsteps) {
        if (step.level >= skip_through)
            continue;
        const int row = 5 - step.level; // gL4 -> 1 ... gL1 -> 4
        const Addr entry_gpa = step.entry_addr;
        Translation host;
        if (Addr *hpa_frame = ntlb.lookup(entry_gpa)) {
            host = {*hpa_frame, PageSize::Page4K, true};
            t += ntlb.latency();
            charge(AttrCause::Tlb, ntlb.latency());
        } else {
            host = hostProbe(entry_gpa, row, t, accesses);
            ntlb.fill(entry_gpa, host.apply(entry_gpa) & ~mask(12));
        }
        t += seqAccess(host.apply(entry_gpa), t);
        ++accesses;
        if (step.level >= 2 && !step.leaf)
            gpwc.fill(step.level, gva);
    }

    // Row 5: the data page's gPA.
    const Addr gpa_data = guest.apply(gva);
    hostProbe(gpa_data, 5, t, accesses);

    result.translation = sys.fullTranslate(gva);
    finishWalk(result, now, t, accesses);
    return result;
}

} // namespace necpt
