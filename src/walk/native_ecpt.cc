#include "walk/native_ecpt.hh"

#include "common/log.hh"

namespace necpt
{

WalkResult
NativeEcptWalker::translate(Addr gva, Cycles now)
{
    WalkResult result;
    EcptPageTable *table = sys.guestEcpt();
    NECPT_ASSERT(table != nullptr);

    Cycles t = now + cwc.latency() + hash_latency;

    PlanOptions options;
    options.use_pte_info = false;
    options.now = t;
    const EcptProbePlan plan = planEcptWalk(*table, cwc, gva, options);
    stats_.guest_kind[static_cast<int>(plan.kind)].inc();

    // One parallel probe phase over the selected (size, way) slots —
    // addresses are final physical in a native system.
    probe_buf.clear();
    for (int s = 0; s < num_page_sizes; ++s) {
        if (plan.way_mask[s])
            table->probeAddrs(gva, all_page_sizes[s], plan.way_mask[s],
                              probe_buf);
    }
    const BatchResult br = batchAccess(probe_buf, t);
    t += br.latency;
    stats_.step_sum[0] += static_cast<std::uint64_t>(br.requests);
    stats_.step_cnt[0] += 1;

    // Background CWT refills for the CWC levels that missed.
    refill_buf.clear();
    collectCwcRefills(*table, cwc, gva, plan, options, refill_buf);
    if (!refill_buf.empty())
        backgroundAccess(refill_buf, t);

    result.translation = sys.fullTranslate(gva);
    NECPT_ASSERT(result.translation.valid);
    finishWalk(result, now, t, br.requests);
    return result;
}

} // namespace necpt
