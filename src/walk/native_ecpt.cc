#include "walk/native_ecpt.hh"

#include "common/log.hh"

namespace necpt
{

WalkResult
NativeEcptWalker::translate(Addr gva, Cycles now)
{
    const bool tracing = traceBegin();
    WalkResult result;
    EcptPageTable *table = sys.guestEcpt();
    NECPT_ASSERT(table != nullptr);

    Cycles t = now + cwc.latency() + hash_latency;
    charge(AttrCause::Probe, cwc.latency());
    charge(AttrCause::Compute, hash_latency);

    PlanOptions options;
    options.use_pte_info = false;
    options.now = t;
    const EcptProbePlan plan = planEcptWalk(*table, cwc, gva, options);
    stats_.guest_kind[static_cast<int>(plan.kind)].inc();
    if (tracing) {
        for (int s = 0; s < num_page_sizes; ++s) {
            if (!cwc.caches(all_page_sizes[s]))
                continue;
            tracer_->instant(plan.cwc_missed[s] ? "cwc.miss"
                                                : "cwc.hit",
                             TraceCat::Cwc,
                             static_cast<std::uint32_t>(core), t,
                             {{"cache", 0, "gcwc"},
                              {"level", 0,
                               pageLevelName(all_page_sizes[s])},
                              {"kind", 0, walkKindName(plan.kind)}});
        }
    }

    // One parallel probe phase over the selected (size, way) slots —
    // addresses are final physical in a native system.
    probe_buf.clear();
    appendPlannedProbes(*table, gva, plan, probe_buf);
    const Cycles t1 = t;
    const BatchResult br =
        executeProbePhase(mem, core, stats_, 0, probe_buf, t, &ledger_);
    t += br.latency;
    if (tracing) {
        const auto core_id = static_cast<std::uint32_t>(core);
        for (std::size_t i = 0; i < probe_buf.size(); ++i)
            tracer_->instant("probe", TraceCat::Probe, core_id, t1,
                             {{"step", 1},
                              {"way", static_cast<std::int64_t>(i)},
                              {"addr", static_cast<std::int64_t>(
                                           probe_buf[i])}});
        tracer_->span("walk.probe", TraceCat::Walk, core_id, t1,
                      br.latency, {{"probes", br.requests}});
    }

    // Background CWT refills for the CWC levels that missed.
    refill_buf.clear();
    collectCwcRefills(*table, cwc, gva, plan, options, refill_buf);
    if (!refill_buf.empty())
        backgroundAccess(refill_buf, t);

    result.translation = sys.fullTranslate(gva);
    NECPT_ASSERT(result.translation.valid);
    finishWalk(result, now, t, br.requests);
    return result;
}

} // namespace necpt
