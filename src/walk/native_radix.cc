#include "walk/native_radix.hh"

#include "common/log.hh"

namespace necpt
{

WalkResult
NativeRadixWalker::translate(Addr gva, Cycles now)
{
    WalkResult result;
    std::vector<RadixStep> steps;
    RadixPageTable *table = sys.guestRadix();
    NECPT_ASSERT(table != nullptr);
    const Translation t9n = table->walk(gva, steps);
    NECPT_ASSERT(t9n.valid);

    const int skip_through = pwcSkipLevel(pwc, steps, gva);

    Cycles t = now + pwc.latency();
    int accesses = 0;
    for (const RadixStep &step : steps) {
        if (step.level >= skip_through)
            continue;
        t += seqAccess(step.entry_addr, t);
        ++accesses;
        // Only non-leaf entries belong in the PWC; completed leaf
        // translations go to the TLB instead.
        if (step.level >= 2 && !step.leaf)
            pwc.fill(step.level, gva);
    }

    result.translation = t9n;
    finishWalk(result, now, t, accesses);
    return result;
}

} // namespace necpt
