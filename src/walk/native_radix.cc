#include "walk/native_radix.hh"

#include "common/log.hh"

namespace necpt
{

WalkResult
NativeRadixWalker::translate(Addr gva, Cycles now)
{
    const bool tracing = traceBegin();
    WalkResult result;
    std::vector<RadixStep> steps;
    RadixPageTable *table = sys.guestRadix();
    NECPT_ASSERT(table != nullptr);
    const Translation t9n = table->walk(gva, steps);
    NECPT_ASSERT(t9n.valid);

    const int skip_through = pwcSkipLevel(pwc, steps, gva);

    Cycles t = now + pwc.latency();
    charge(AttrCause::Probe, pwc.latency());
    int accesses = 0;
    for (const RadixStep &step : steps) {
        if (step.level >= skip_through)
            continue;
        const Cycles t0 = t;
        t += seqAccess(step.entry_addr, t);
        ++accesses;
        if (tracing)
            tracer_->span("radix.level", TraceCat::Walk,
                          static_cast<std::uint32_t>(core), t0, t - t0,
                          {{"level", step.level},
                           {"addr", static_cast<std::int64_t>(
                                        step.entry_addr)}});
        // Only non-leaf entries belong in the PWC; completed leaf
        // translations go to the TLB instead.
        if (step.level >= 2 && !step.leaf)
            pwc.fill(step.level, gva);
    }

    result.translation = t9n;
    finishWalk(result, now, t, accesses);
    return result;
}

} // namespace necpt
