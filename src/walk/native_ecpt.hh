/**
 * @file
 * Native ECPT walker (Section 2.3, the ASPLOS'20 design): one parallel
 * probe phase over the per-size elastic cuckoo tables, pruned by a
 * Cuckoo Walk Cache holding PMD/PUD CWT entries (no PTE CWT natively —
 * Section 4.2 recalls why).
 */

#ifndef NECPT_WALK_NATIVE_ECPT_HH
#define NECPT_WALK_NATIVE_ECPT_HH

#include "mmu/cwc.hh"
#include "walk/plan.hh"
#include "walk/walker.hh"

namespace necpt
{

/**
 * Walker for the native "ECPTs" configurations of Table 1.
 */
class NativeEcptWalker : public Walker
{
  public:
    NativeEcptWalker(NestedSystem &system, MemoryHierarchy &memory,
                     int core_id)
        : Walker(system, memory, core_id),
          cwc({0, 16, 2}) // Table 2 gCWC geometry: 16 PMD + 2 PUD
    {}

    WalkResult translate(Addr gva, Cycles now) override;

    std::string name() const override { return "ECPT"; }

    const char *metricsSlug() const override { return "ecpt"; }

    void
    registerMetrics(MetricsRegistry &reg,
                    const std::string &prefix) override
    {
        Walker::registerMetrics(reg, prefix);
        for (PageSize size : all_page_sizes) {
            if (!cwc.caches(size))
                continue;
            reg.addHitMiss(prefix + "cwc.gcwc." + pageLevelName(size),
                           &cwc.stats(size));
        }
    }

    CuckooWalkCache &walkCache() { return cwc; }

    std::size_t
    invalidateTranslationCaches(Addr gva, std::uint64_t bytes, Addr,
                                std::uint64_t) override
    {
        return cwc.invalidateRange(gva, bytes);
    }

  private:
    CuckooWalkCache cwc;
    std::vector<Addr> probe_buf;
    std::vector<Addr> refill_buf;
};

} // namespace necpt

#endif // NECPT_WALK_NATIVE_ECPT_HH
