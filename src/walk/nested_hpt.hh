/**
 * @file
 * Nested hashed-page-table walker — the Figure-3 background design
 * (Section 2.2, following Yaniv & Tsafrir's nested HPTs).
 *
 * With a single open-addressed HPT for guest and host, a nested
 * translation needs only three memory references *in the collision-
 * free ideal*: host HPT (locate the gPTE), guest HPT (read the gPTE),
 * host HPT (translate the data gPA). Collision chains make each step
 * a sequential probe sequence, and every *guest* probe's slot address
 * is guest-physical and needs its own host translation — the
 * shortcomings that motivate elastic cuckoo tables (Section 2.2).
 */

#ifndef NECPT_WALK_NESTED_HPT_HH
#define NECPT_WALK_NESTED_HPT_HH

#include "walk/walker.hh"

namespace necpt
{

/**
 * Walker for the classic nested-HPT organization (4KB pages only).
 */
class NestedHptWalker : public Walker
{
  public:
    NestedHptWalker(NestedSystem &system, MemoryHierarchy &memory,
                    int core_id)
        : Walker(system, memory, core_id)
    {}

    WalkResult translate(Addr gva, Cycles now) override;

    std::string name() const override { return "NestedHPT"; }

    /** Mean probes per completed walk (collision-chain cost). */
    double
    avgProbesPerWalk() const
    {
        return stats_.walks.value()
            ? static_cast<double>(stats_.mmu_requests.value())
                  / static_cast<double>(stats_.walks.value())
            : 0.0;
    }

  private:
    /**
     * Sequentially probe the host HPT chain for @p gpa, advancing
     * @p t. @return the host translation.
     */
    Translation hostChain(Addr gpa, Cycles &t, int &accesses);

    std::vector<Addr> probe_buf;
};

} // namespace necpt

#endif // NECPT_WALK_NESTED_HPT_HH
