/**
 * @file
 * necpt_report — merge sweep / stats / time-series JSON documents into
 * one standalone static HTML report.
 *
 *   necpt_report --out report.html --sweep sweep_smoke.json \
 *                --stats stats.json --timeseries ts.json
 *
 * The input documents are embedded verbatim in <script
 * type="application/json"> islands and rendered client-side by inline
 * JavaScript — no external assets, no network, no dependencies: the
 * file opens anywhere (CI artifact viewers included). Rendering
 * covers the sweep record table with per-job cycle-attribution
 * stacked bars (attr.*.share), registry scalars with the histogram
 * p50/p95/p99 columns, and per-run time-series sparklines with a
 * series picker.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/log.hh"

using namespace necpt;

namespace
{

struct Doc
{
    std::string kind; //!< "sweep" | "stats" | "timeseries"
    std::string name; //!< source file name (report label)
    std::string text; //!< raw JSON
};

void
usage(const char *prog)
{
    std::printf(
        "usage: %s --out FILE [--title T] [--sweep FILE]...\n"
        "       [--stats FILE]... [--timeseries FILE]...\n\n"
        "options:\n"
        "  --out FILE         HTML output path (required)\n"
        "  --title T          report title (default 'necpt report')\n"
        "  --sweep FILE       a necpt_sweep results JSON (repeatable)\n"
        "  --stats FILE       a necpt-stats-v1 registry dump\n"
        "                     (repeatable)\n"
        "  --timeseries FILE  a necpt-timeseries-v1 document\n"
        "                     (repeatable)\n",
        prog);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read '%s'", path.c_str());
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** The one sequence that can break out of a <script> island. */
std::string
escapeScriptClose(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        if (in.compare(i, 8, "</script") == 0) {
            out += "<\\/script";
            i += 7;
            continue;
        }
        out.push_back(in[i]);
    }
    return out;
}

std::string
htmlEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        switch (c) {
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '&': out += "&amp;"; break;
          case '"': out += "&quot;"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

const char *report_css = R"css(
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto;
       max-width: 72em; padding: 0 1em; color: #1c2330; }
h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 2em;
     border-bottom: 1px solid #d8dde6; padding-bottom: .25em; }
h3 { font-size: 1em; margin-bottom: .3em; }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td { text-align: left; padding: .25em .6em; border-bottom:
         1px solid #eceff4; white-space: nowrap; }
th { background: #f4f6fa; position: sticky; top: 0; }
td.num, th.num { text-align: right;
                 font-variant-numeric: tabular-nums; }
.ok { color: #1a7f37; } .failed, .timeout { color: #b35900;
     font-weight: 600; }
.bar { display: flex; height: 14px; width: 16em; border-radius: 3px;
       overflow: hidden; background: #eceff4; }
.bar div { height: 100%; }
.legend { display: flex; flex-wrap: wrap; gap: .4em 1.2em;
          margin: .5em 0; font-size: 12px; }
.legend span::before { content: ''; display: inline-block;
  width: .8em; height: .8em; margin-right: .35em; border-radius: 2px;
  background: var(--c); vertical-align: -1px; }
.spark { border: 1px solid #d8dde6; border-radius: 3px;
         background: #fff; }
.muted { color: #68738a; }
select { font: inherit; margin: 0 0 .6em; }
)css";

const char *report_js = R"js(
'use strict';
const CAUSES = ['tlb','probe','compute','issue','mshr','cache',
                'dram_queue','dram_service','dram_bus','fault',
                'coalesce'];
const COLORS = ['#4c78a8','#72b7b2','#eeca3b','#f58518','#e45756',
                '#54a24b','#b279a2','#9d755d','#bab0ac','#d62728',
                '#17becf'];
const $ = (sel, el) => (el || document).querySelector(sel);
const el = (tag, attrs, text) => {
  const e = document.createElement(tag);
  for (const k in (attrs || {})) e.setAttribute(k, attrs[k]);
  if (text !== undefined) e.textContent = text;
  return e;
};
const fmt = v => typeof v !== 'number' ? String(v)
  : Math.abs(v) >= 1e6 ? v.toExponential(3)
  : Number.isInteger(v) ? String(v) : v.toPrecision(5);

function docs(kind) {
  return [...document.querySelectorAll(
    `script[type="application/json"][data-kind="${kind}"]`)]
    .map(s => ({name: s.dataset.name, data: JSON.parse(s.textContent)}));
}

function attrBar(metrics) {
  const bar = el('div', {class: 'bar'});
  let covered = 0;
  CAUSES.forEach((c, i) => {
    const share = metrics[`attr.${c}.share`] || 0;
    if (share <= 0) return;
    covered += share;
    const seg = el('div');
    seg.style.width = (100 * share) + '%';
    seg.style.background = COLORS[i];
    seg.title = `${c}: ${(100 * share).toFixed(1)}%`;
    bar.appendChild(seg);
  });
  return covered > 0 ? bar : el('span', {class: 'muted'}, '-');
}

function renderSweep(root, doc) {
  const d = doc.data;
  root.appendChild(el('h3', {},
    `${d.sweep} — ${d.ok}/${d.total} ok (seed ${d.base_seed})`));
  const legend = el('div', {class: 'legend'});
  CAUSES.forEach((c, i) => {
    const s = el('span', {}, c);
    s.style.setProperty('--c', COLORS[i]);
    legend.appendChild(s);
  });
  root.appendChild(legend);
  const table = el('table');
  const hdr = el('tr');
  for (const h of ['job', 'status', 'cycles', 'walks',
                   'MMU busy', 'walk cycle attribution'])
    hdr.appendChild(el('th', h === 'job' || h.includes('attr')
                       ? {} : {class: 'num'}, h));
  table.appendChild(hdr);
  for (const r of d.records) {
    const tr = el('tr');
    tr.appendChild(el('td', {}, r.key));
    tr.appendChild(el('td', {class: r.status}, r.status +
      (r.attempts > 1 ? ` (x${r.attempts})` : '')));
    const res = r.result || {};
    tr.appendChild(el('td', {class: 'num'}, fmt(res.cycles ?? '-')));
    tr.appendChild(el('td', {class: 'num'}, fmt(res.walks ?? '-')));
    tr.appendChild(el('td', {class: 'num'},
                      fmt(res.mmu_busy_cycles ?? '-')));
    const attr = el('td');
    attr.appendChild(attrBar(r.metrics || {}));
    tr.appendChild(attr);
    if (r.status !== 'ok')
      tr.title = r.error || '';
    table.appendChild(tr);
  }
  root.appendChild(table);
}

function renderStats(root, doc) {
  const d = doc.data;
  root.appendChild(el('h3', {}, doc.name));
  const table = el('table');
  const hdr = el('tr');
  for (const h of ['metric', 'kind', 'value', 'mean', 'p50', 'p95',
                   'p99', 'max'])
    hdr.appendChild(el('th', h === 'metric' || h === 'kind'
                       ? {} : {class: 'num'}, h));
  table.appendChild(hdr);
  for (const name of Object.keys(d.metrics)) {
    const m = d.metrics[name];
    const tr = el('tr');
    tr.appendChild(el('td', {}, name));
    tr.appendChild(el('td', {class: 'muted'}, m.kind));
    const cell = v => el('td', {class: 'num'},
                         v === undefined ? '' : fmt(v));
    if (m.kind === 'histogram') {
      const total = (m.bins || []).reduce((a, b) => a + b, 0);
      const pct = p => {
        if (!total) return 0;
        let seen = 0, target = p / 100 * total;
        for (let i = 0; i < m.bins.length; ++i) {
          if (m.bins[i] > 0 && seen + m.bins[i] >= target) {
            if (i === m.bins.length - 1) return m.max;
            return Math.round(i * m.width +
              (target - seen) / m.bins[i] * m.width);
          }
          seen += m.bins[i];
        }
        return m.max;
      };
      tr.appendChild(cell(m.count));
      tr.appendChild(cell(m.mean));
      tr.appendChild(cell(pct(50)));
      tr.appendChild(cell(pct(95)));
      tr.appendChild(cell(pct(99)));
      tr.appendChild(cell(m.max));
    } else {
      tr.appendChild(cell(m.value ?? m.last));
      for (let i = 0; i < 5; ++i) tr.appendChild(cell(undefined));
    }
    table.appendChild(tr);
  }
  root.appendChild(table);
}

function sparkline(rows, col) {
  const W = 640, H = 90, PAD = 4;
  const xs = rows.map(r => r[0]), ys = rows.map(r => r[col]);
  const x0 = Math.min(...xs), x1 = Math.max(...xs);
  const y0 = Math.min(...ys), y1 = Math.max(...ys);
  const sx = x => PAD + (x1 > x0 ? (x - x0) / (x1 - x0) : 0)
    * (W - 2 * PAD);
  const sy = y => H - PAD - (y1 > y0 ? (y - y0) / (y1 - y0) : 0.5)
    * (H - 2 * PAD);
  const pts = rows.map(r =>
    `${sx(r[0]).toFixed(1)},${sy(r[col]).toFixed(1)}`).join(' ');
  const svg = document.createElementNS(
    'http://www.w3.org/2000/svg', 'svg');
  svg.setAttribute('width', W);
  svg.setAttribute('height', H);
  svg.setAttribute('class', 'spark');
  const line = document.createElementNS(
    'http://www.w3.org/2000/svg', 'polyline');
  line.setAttribute('points', pts);
  line.setAttribute('fill', 'none');
  line.setAttribute('stroke', COLORS[0]);
  line.setAttribute('stroke-width', '1.5');
  svg.appendChild(line);
  const label = document.createElementNS(
    'http://www.w3.org/2000/svg', 'text');
  label.setAttribute('x', W - PAD);
  label.setAttribute('y', 14);
  label.setAttribute('text-anchor', 'end');
  label.setAttribute('font-size', '11');
  label.setAttribute('fill', '#68738a');
  label.textContent = `min ${fmt(y0)}  max ${fmt(y1)}`;
  svg.appendChild(label);
  return svg;
}

function renderTimeseries(root, doc) {
  const d = doc.data;
  root.appendChild(el('h3', {},
    `${doc.name} (interval ${d.interval} cycles)`));
  for (const run of d.runs) {
    if (!run.samples.length) continue;
    const box = el('div');
    box.appendChild(el('h3', {class: 'muted'}, run.key));
    const pick = el('select');
    const preferred = run.series.findIndex(s =>
      /attr\.total|busy_cycles|walks$/.test(s));
    run.series.forEach((s, i) =>
      pick.appendChild(el('option', {value: i + 1}, s)));
    pick.value = String((preferred >= 0 ? preferred : 0) + 1);
    const holder = el('div');
    const draw = () => {
      holder.textContent = '';
      holder.appendChild(sparkline(run.samples, Number(pick.value)));
    };
    pick.addEventListener('change', draw);
    box.appendChild(pick);
    box.appendChild(holder);
    draw();
    root.appendChild(box);
  }
}

function section(title) {
  const sec = el('div');
  sec.appendChild(el('h2', {}, title));
  document.body.appendChild(sec);
  return sec;
}

window.addEventListener('DOMContentLoaded', () => {
  const sweeps = docs('sweep'), stats = docs('stats'),
        series = docs('timeseries');
  if (sweeps.length) {
    const sec = section('Sweeps');
    for (const doc of sweeps) renderSweep(sec, doc);
  }
  if (series.length) {
    const sec = section('Time series');
    for (const doc of series) renderTimeseries(sec, doc);
  }
  if (stats.length) {
    const sec = section('Metrics registries');
    for (const doc of stats) renderStats(sec, doc);
  }
  if (!sweeps.length && !stats.length && !series.length)
    document.body.appendChild(
      el('p', {class: 'muted'}, 'no input documents'));
});
)js";

int
run(int argc, char **argv)
{
    std::string out_path;
    std::string title = "necpt report";
    std::vector<Doc> inputs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--out") out_path = value();
        else if (arg == "--title") title = value();
        else if (arg == "--sweep")
            inputs.push_back({"sweep", "", value()});
        else if (arg == "--stats")
            inputs.push_back({"stats", "", value()});
        else if (arg == "--timeseries")
            inputs.push_back({"timeseries", "", value()});
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }
    if (out_path.empty()) {
        usage(argv[0]);
        return 1;
    }

    // The path arrived in .text; load the file and keep the name as
    // the report label.
    for (Doc &doc : inputs) {
        doc.name = doc.text;
        doc.text = readFile(doc.name);
    }

    std::ostringstream html;
    html << "<!doctype html>\n<html lang=\"en\">\n<head>\n"
         << "<meta charset=\"utf-8\">\n"
         << "<title>" << htmlEscape(title) << "</title>\n"
         << "<style>" << report_css << "</style>\n</head>\n<body>\n"
         << "<h1>" << htmlEscape(title) << "</h1>\n"
         << "<p class=\"muted\">" << inputs.size()
         << " input document(s); self-contained, no external"
            " assets.</p>\n";
    for (const Doc &doc : inputs) {
        html << "<script type=\"application/json\" data-kind=\""
             << doc.kind << "\" data-name=\"" << htmlEscape(doc.name)
             << "\">\n"
             << escapeScriptClose(doc.text) << "</script>\n";
    }
    html << "<script>" << report_js << "</script>\n</body>\n</html>\n";

    std::ofstream out(out_path, std::ios::binary);
    if (!out)
        fatal("cannot write '%s'", out_path.c_str());
    out << html.str();
    if (!out)
        fatal("cannot write '%s'", out_path.c_str());
    std::fprintf(stderr, "report: %s (%zu input documents)\n",
                 out_path.c_str(), inputs.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const SimError &e) {
        fatal("%s error: %s", e.kindName(), e.what());
    }
}
