/**
 * @file
 * necpt-run — the standalone command-line driver.
 *
 *   necpt-run --list
 *   necpt-run --config "Nested ECPTs THP" --app GUPS
 *   necpt-run --config "Nested Radix" --app BFS --measure 2000000 \
 *             --scale 8 --cores 2 --csv out.csv --json
 *   necpt-run --config "Nested ECPTs" --trace capture.bin
 *
 * Runs one (configuration, application) simulation with explicit
 * parameters and prints a human summary, optionally appending a CSV
 * row or emitting JSON for tooling.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/cycle_ledger.hh"
#include "common/error.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/trace_events.hh"
#include "sim/critical_path.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/timeseries.hh"
#include "workloads/trace.hh"

using namespace necpt;

namespace
{

const std::vector<ConfigId> &
allConfigIds()
{
    static const std::vector<ConfigId> ids = {
        ConfigId::Radix,           ConfigId::RadixThp,
        ConfigId::Ecpt,            ConfigId::EcptThp,
        ConfigId::NestedRadix,     ConfigId::NestedRadixThp,
        ConfigId::NestedEcpt,      ConfigId::NestedEcptThp,
        ConfigId::NestedHybrid,    ConfigId::NestedHybridThp,
        ConfigId::PlainNestedEcpt, ConfigId::PlainNestedEcptThp,
        ConfigId::AgilePagingIdeal, ConfigId::AgilePagingIdealThp,
        ConfigId::PomTlb,          ConfigId::PomTlbThp,
        ConfigId::FlatNested,      ConfigId::FlatNestedThp,
        ConfigId::ShadowPaging,    ConfigId::ShadowPagingThp,
        ConfigId::NestedHpt,
    };
    return ids;
}

void
usage(const char *prog)
{
    std::printf(
        "usage: %s --config NAME --app NAME [options]\n"
        "       %s --list\n\n"
        "options:\n"
        "  --list              list configurations and applications\n"
        "  --config NAME       configuration (see --list)\n"
        "  --app NAME          application (see --list)\n"
        "  --trace FILE        replay a recorded trace instead of an app\n"
        "  --record FILE       record the app's stream to FILE and exit\n"
        "  --measure N         measured accesses   (default 1000000)\n"
        "  --warmup N          warm-up accesses    (default 200000)\n"
        "  --scale N           footprint divisor   (default 16)\n"
        "  --cores N           simulated cores     (default 1)\n"
        "  --mlp N             max in-flight walks per core\n"
        "                      (default 1 = serialized walks)\n"
        "  --coalesce          walk-MSHR same-page coalescing: misses\n"
        "                      for a page whose walk is in flight park\n"
        "                      on it instead of walking (needs --mlp>1)\n"
        "  --sim-threads N     host threads the simulation shards\n"
        "                      across (default 1; results are\n"
        "                      bit-identical for any N)\n"
        "  --seed N            simulation seed\n"
        "  --churn SPEC        arm translation churn + shootdowns:\n"
        "                      migrate:PERIOD[:PAGES], balloon:...,\n"
        "                      thp:..., protect:..., mode:sw|hw,\n"
        "                      batch:N, all  (comma-separated)\n"
        "  --radix-levels N    4 or 5 (LA57)\n"
        "  --csv FILE          append a CSV row (header if new file)\n"
        "  --json              print the result as JSON\n"
        "  --stats-json FILE   dump the unified metrics registry\n"
        "                      (every component counter) as JSON\n"
        "  --trace-walks[=N]   record walk-level trace events, every\n"
        "                      Nth walk (default all)\n"
        "  --trace-out FILE    Chrome trace-event output file\n"
        "                      (default necpt_trace.json)\n"
        "  --sample-metrics=N  snapshot every registry scalar each N\n"
        "                      simulated cycles (necpt-timeseries-v1)\n"
        "  --timeseries-out FILE\n"
        "                      time-series output file\n"
        "                      (default necpt_timeseries.json)\n"
        "  --critical-path[=K] record event dependencies and print the\n"
        "                      per-core critical-path report (top-K\n"
        "                      stalls, default 5)\n"
        "  --no-attribution    disable per-walk cycle attribution\n"
        "                      (attr.* counters stay zero)\n"
        "  --quiet             suppress warn/info log output\n",
        prog, prog);
}

int
run(int argc, char **argv)
{
    std::string config_name, app_name, trace_path, record_path,
        csv_path, stats_json_path, trace_out_path, timeseries_out_path;
    bool list = false, json = false;
    std::uint64_t trace_walks = 0; //!< sample interval; 0 = tracing off
    std::uint64_t sample_metrics = 0; //!< cycles between snapshots
    int critical_path_k = 0;          //!< top-K stalls; 0 = off
    SimParams params = paramsFromEnv();
    int radix_levels = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--list") list = true;
        else if (arg == "--config") config_name = value();
        else if (arg == "--app") app_name = value();
        else if (arg == "--trace") trace_path = value();
        else if (arg == "--record") record_path = value();
        else if (arg == "--measure")
            params.measure_accesses = std::stoull(value());
        else if (arg == "--warmup")
            params.warmup_accesses = std::stoull(value());
        else if (arg == "--scale")
            params.scale_denominator = std::stoull(value());
        else if (arg == "--cores") params.cores = std::stoi(value());
        else if (arg == "--mlp")
            params.max_outstanding_walks = std::stoi(value());
        else if (arg == "--coalesce") params.walk_coalescing = true;
        else if (arg == "--sim-threads")
            params.sim_threads = std::stoi(value());
        else if (arg == "--seed") params.seed = std::stoull(value());
        else if (arg == "--churn")
            params.churn = parseChurnSpec(value());
        else if (arg == "--radix-levels")
            radix_levels = std::stoi(value());
        else if (arg == "--csv") csv_path = value();
        else if (arg == "--json") json = true;
        else if (arg == "--stats-json") stats_json_path = value();
        else if (arg == "--trace-walks") trace_walks = 1;
        else if (arg.rfind("--trace-walks=", 0) == 0)
            trace_walks = std::stoull(arg.substr(14));
        else if (arg == "--trace-out") trace_out_path = value();
        else if (arg == "--sample-metrics") sample_metrics = std::stoull(value());
        else if (arg.rfind("--sample-metrics=", 0) == 0)
            sample_metrics = std::stoull(arg.substr(17));
        else if (arg == "--timeseries-out") timeseries_out_path = value();
        else if (arg == "--critical-path") critical_path_k = 5;
        else if (arg.rfind("--critical-path=", 0) == 0)
            critical_path_k = std::stoi(arg.substr(16));
        else if (arg == "--no-attribution") params.attribution = false;
        else if (arg == "--quiet") setLogLevel(LogLevel::Quiet);
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }

    if (list) {
        std::printf("configurations:\n");
        for (const ConfigId id : allConfigIds())
            std::printf("  %s\n", configName(id).c_str());
        std::printf("applications:\n");
        for (const auto &app : paperApplications())
            std::printf("  %s\n", app.c_str());
        return 0;
    }

    if (!record_path.empty()) {
        if (app_name.empty())
            fatal("--record requires --app");
        SystemConfig scfg;
        scfg.guest_kind = PtKind::Radix;
        scfg.host_kind = PtKind::Radix;
        NestedSystem sys(scfg);
        auto workload = makeWorkload(app_name,
                                     params.scale_denominator);
        if (!recordTrace(*workload, sys, params.measure_accesses,
                         record_path))
            fatal("failed to write trace '%s'", record_path.c_str());
        std::printf("recorded %llu accesses of %s to %s\n",
                    (unsigned long long)params.measure_accesses,
                    app_name.c_str(), record_path.c_str());
        return 0;
    }

    if (config_name.empty() || (app_name.empty() && trace_path.empty())) {
        usage(argv[0]);
        return 1;
    }

    ExperimentConfig config;
    bool found = false;
    for (const ConfigId id : allConfigIds()) {
        if (configName(id) == config_name) {
            config = makeConfig(id);
            found = true;
            break;
        }
    }
    if (!found)
        fatal("unknown configuration '%s' (see --list)",
              config_name.c_str());
    if (radix_levels)
        config.system.radix_levels = radix_levels;

    // The tracer must outlive the Simulator (components keep a raw
    // pointer to it until they are torn down).
    std::unique_ptr<TraceBuffer> tracer;
    if (trace_walks) {
        tracer = std::make_unique<TraceBuffer>(
            TraceBuffer::default_capacity, trace_walks);
        params.tracer = tracer.get();
    }
    std::unique_ptr<TimeSeriesBuffer> timeseries;
    if (sample_metrics) {
        timeseries = std::make_unique<TimeSeriesBuffer>(sample_metrics);
        params.timeseries = timeseries.get();
    }
    std::unique_ptr<CriticalPathRecorder> critical_path;
    if (critical_path_k) {
        critical_path = std::make_unique<CriticalPathRecorder>(
            params.cores, critical_path_k);
        params.critical_path = critical_path.get();
    }

    Simulator sim(config, params);
    SimResult result;
    if (!trace_path.empty()) {
        // The constructor throws a TraceError (file + byte offset) on
        // any corrupt input; main() renders it at the exit boundary.
        TraceWorkload probe(trace_path);
        const std::uint64_t footprint = probe.info().footprint_bytes;
        result = sim.runWith(
            "trace:" + trace_path,
            [&](std::uint64_t) {
                return std::make_unique<TraceWorkload>(trace_path);
            },
            footprint);
    } else {
        result = sim.run(app_name);
    }

    std::printf("%-22s %-10s\n", result.config.c_str(),
                result.app.c_str());
    std::printf("  cycles            %llu\n",
                (unsigned long long)result.cycles);
    std::printf("  instructions      %llu  (IPC %.3f)\n",
                (unsigned long long)result.instructions,
                result.cycles ? static_cast<double>(result.instructions)
                        / result.cycles : 0.0);
    std::printf("  MMU busy cycles   %llu  (%.1f/walk)\n",
                (unsigned long long)result.mmu_busy_cycles,
                result.walks ? static_cast<double>(
                    result.mmu_busy_cycles) / result.walks : 0.0);
    std::printf("  walks             %llu  (L2 TLB misses %llu)\n",
                (unsigned long long)result.walks,
                (unsigned long long)result.l2_tlb_misses);
    std::printf("  MMU requests      %llu  (RPKI %.1f)\n",
                (unsigned long long)result.mmu_requests,
                result.mmu_rpki);
    if (params.max_outstanding_walks > 1)
        std::printf("  in-flight walks   %.2f avg, %llu peak\n",
                    result.walk_inflight_avg,
                    (unsigned long long)result.walk_inflight_max);
    if (params.walk_coalescing) {
        const auto it = result.metrics.find("walk.coalesced");
        const double merged =
            it != result.metrics.end() ? it->second : 0.0;
        std::printf("  coalesced walks   %.0f  (%.1f%% of walks)\n",
                    merged,
                    result.walks ? 100.0 * merged
                            / static_cast<double>(result.walks)
                                 : 0.0);
    }
    if (result.step_avg[0] > 0)
        std::printf("  step accesses     %.1f / %.1f / %.1f\n",
                    result.step_avg[0], result.step_avg[1],
                    result.step_avg[2]);
    if (params.attribution && result.walks) {
        // Top-3 attribution causes: where walk cycles actually went.
        struct Share { double share = 0; const char *name = nullptr; };
        std::vector<Share> shares;
        for (int c = 0; c < num_attr_causes; ++c) {
            const char *an = attrCauseName(static_cast<AttrCause>(c));
            const auto it =
                result.metrics.find("attr." + std::string(an)
                                    + ".share");
            if (it != result.metrics.end() && it->second > 0)
                shares.push_back({it->second, an});
        }
        std::sort(shares.begin(), shares.end(),
                  [](const Share &a, const Share &b) {
                      return a.share > b.share;
                  });
        if (!shares.empty()) {
            std::printf("  walk cycles go to");
            const std::size_t top = std::min<std::size_t>(3,
                                                          shares.size());
            for (std::size_t i = 0; i < top; ++i)
                std::printf("%s %s %.1f%%", i ? "," : "",
                            shares[i].name, 100.0 * shares[i].share);
            std::printf("\n");
        }
    }
    if (params.churn.enabled()) {
        auto metric = [&](const char *name) {
            const auto it = result.metrics.find(name);
            return it == result.metrics.end() ? 0.0 : it->second;
        };
        std::printf("  churn ops         %.0f  (%s)\n",
                    metric("churn.ops"),
                    churnSpecToString(params.churn).c_str());
        std::printf("  shootdown rounds  %.0f  (%.0f invalidations, "
                    "%.0f entries dropped)\n",
                    metric("shootdown.rounds"),
                    metric("shootdown.invalidations"),
                    metric("shootdown.entries.dropped"));
        std::printf("  round latency     %.0f cycles mean  "
                    "(%.0f walk replays)\n",
                    metric("shootdown.latency.mean"),
                    metric("shootdown.walk_replays"));
    }

    if (!csv_path.empty()) {
        std::FILE *probe = std::fopen(csv_path.c_str(), "r");
        const bool fresh = probe == nullptr;
        if (probe)
            std::fclose(probe);
        std::FILE *out = std::fopen(csv_path.c_str(), "a");
        if (!out)
            fatal("cannot open '%s'", csv_path.c_str());
        if (fresh)
            writeCsvHeader(out);
        writeCsvRow(out, result);
        std::fclose(out);
    }
    if (json)
        std::printf("%s\n", toJson(result).c_str());

    if (!stats_json_path.empty()) {
        MetricsRegistry registry;
        sim.exportMetrics(registry);
        if (!registry.writeJson(stats_json_path))
            fatal("cannot write '%s'", stats_json_path.c_str());
        std::fprintf(stderr, "stats JSON: %s\n",
                     stats_json_path.c_str());
    }
    if (tracer) {
        if (trace_out_path.empty())
            trace_out_path = "necpt_trace.json";
        if (!writeChromeTrace(trace_out_path, *tracer,
                              result.config + "/" + result.app))
            fatal("cannot write '%s'", trace_out_path.c_str());
        std::fprintf(stderr,
                     "trace: %s (%zu events, %llu walks sampled)\n",
                     trace_out_path.c_str(), tracer->size(),
                     (unsigned long long)tracer->walksSampled());
    }
    if (timeseries) {
        if (timeseries_out_path.empty())
            timeseries_out_path = "necpt_timeseries.json";
        const std::vector<TimeSeriesRun> runs = {
            {result.config + "/" + result.app, timeseries.get()}};
        if (!writeTimeseriesJson(timeseries_out_path, runs,
                                 timeseries->interval()))
            fatal("cannot write '%s'", timeseries_out_path.c_str());
        std::fprintf(stderr, "timeseries: %s (%zu samples of %zu "
                             "series)\n",
                     timeseries_out_path.c_str(),
                     timeseries->samples().size(),
                     timeseries->series().size());
    }
    if (critical_path)
        std::printf("%s", critical_path->report().c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // The library throws typed SimErrors; the process boundary is the
    // one place that turns them into an exit code.
    try {
        return run(argc, argv);
    } catch (const SimError &e) {
        fatal("%s error: %s", e.kindName(), e.what());
    }
}
