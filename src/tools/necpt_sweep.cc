/**
 * @file
 * necpt_sweep — the unified parallel sweep runner.
 *
 *   necpt_sweep --list
 *   necpt_sweep fig9 --jobs 8
 *   necpt_sweep multicore --jobs 4 --timeout 600 --json mc.json \
 *               --csv mc.csv
 *
 * Runs any registered figure/table grid on the sweep engine: the
 * grid fans out across a fixed-size thread pool, each (config, app)
 * job is fault-isolated (exceptions and timeouts become `failed`
 * records instead of aborting the sweep), and results are emitted
 * both as the bench binary's human tables (byte-identical stdout)
 * and as machine-readable JSON (always) / CSV (on request).
 *
 * Determinism: per-job seeds derive from the job key, so any --jobs
 * value produces identical records. Environment knobs (NECPT_WARMUP,
 * NECPT_MEASURE, NECPT_SCALE, NECPT_APPS, NECPT_FULL, NECPT_JOBS)
 * are honored exactly as the bench binaries honor them.
 *
 * Fault campaigns (`--faults SPEC`) replicate the grid under
 * --fault-seeds independent fault streams with the spec's injection
 * sites armed; surfaced faults become typed `failed` records (the
 * campaign's product, so the exit code stays 0), retryable ones
 * consume --retries engine retries, and the JSON is written in
 * canonical form so a fixed --seed reproduces it byte-identically at
 * any --jobs value.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#include "common/error.hh"
#include "common/log.hh"
#include "common/trace_events.hh"
#include "exec/fault_campaign.hh"
#include "exec/registry.hh"

using namespace necpt;

namespace
{

void
usage(const char *prog)
{
    std::printf(
        "usage: %s GRID [options]\n"
        "       %s --list\n\n"
        "options:\n"
        "  --list          list registered sweep grids\n"
        "  --jobs N        worker threads (default: NECPT_JOBS or\n"
        "                  min(4, hardware threads))\n"
        "  --sim-threads N host threads each simulation shards across\n"
        "                  (default: NECPT_SIM_THREADS or 1; results\n"
        "                  are bit-identical for any N; clamped so\n"
        "                  jobs x sim-threads never oversubscribes\n"
        "                  the machine)\n"
        "  --timeout SEC   per-job wall-clock budget (default: none)\n"
        "  --seed N        sweep base seed (per-job seeds derive\n"
        "                  from it and the job key)\n"
        "  --json FILE     results JSON (default: sweep_GRID.json,\n"
        "                  faults_GRID.json in campaign mode)\n"
        "  --no-json       skip the JSON results file\n"
        "  --csv FILE      also write successful results as CSV\n"
        "  --quiet         no per-job progress on stderr, and\n"
        "                  suppress warn/info log output\n"
        "  --trace FILE    record walk-level trace events per job and\n"
        "                  write one Chrome trace-event file (lanes in\n"
        "                  submission order)\n"
        "  --trace-walks[=N] with --trace: trace every Nth walk\n"
        "                  (default all)\n"
        "  --trace-canonical drop the engine's wall-clock spans so\n"
        "                  equal seeds compare byte-identical at any\n"
        "                  --jobs value\n"
        "  --sample-metrics=N snapshot every registry scalar each N\n"
        "                  simulated cycles per job\n"
        "  --timeseries-out FILE merged necpt-timeseries-v1 output\n"
        "                  (default: timeseries_GRID.json when\n"
        "                  sampling is on)\n"
        "  --retries N     re-run attempts that fail with a retryable\n"
        "                  error, with exponential backoff (default 0)\n"
        "  --backoff-ms N  base retry backoff (default 100)\n\n"
        "fault campaigns:\n"
        "  --faults SPEC   run the grid as a fault campaign; SPEC is\n"
        "                  comma-separated sites: pool:FRAC kicks:PROB\n"
        "                  resize:PROB mem:PROB[:CYCLES]\n"
        "                  shootdown:PROB[:CYCLES] trace, or 'all'\n"
        "                  (see EXPERIMENTS.md)\n"
        "  --fault-seeds N campaign replications (default 20)\n",
        prog, prog);
}

int
run(int argc, char **argv)
{
    std::string grid_name, json_path, csv_path, fault_spec_str,
        sweep_trace_path, timeseries_path;
    bool list = false, no_json = false, trace_canonical = false;
    std::uint64_t trace_walks = 1;
    int fault_seeds = 20;
    SweepOptions options;
    SimParams params = paramsFromEnv();
    options.base_seed = params.seed;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--list") list = true;
        else if (arg == "--jobs") options.jobs = std::stoi(value());
        else if (arg == "--sim-threads")
            params.sim_threads = std::stoi(value());
        else if (arg == "--timeout")
            options.timeout_ms = std::stoull(value()) * 1000;
        else if (arg == "--seed") {
            options.base_seed = std::stoull(value());
            params.seed = options.base_seed;
        } else if (arg == "--json") json_path = value();
        else if (arg == "--no-json") no_json = true;
        else if (arg == "--csv") csv_path = value();
        else if (arg == "--quiet") {
            options.progress = nullptr;
            setLogLevel(LogLevel::Quiet);
        }
        else if (arg == "--trace") sweep_trace_path = value();
        else if (arg == "--trace-walks") trace_walks = 1;
        else if (arg.rfind("--trace-walks=", 0) == 0)
            trace_walks = std::stoull(arg.substr(14));
        else if (arg == "--trace-canonical") trace_canonical = true;
        else if (arg == "--sample-metrics")
            options.sample_interval = std::stoull(value());
        else if (arg.rfind("--sample-metrics=", 0) == 0)
            options.sample_interval = std::stoull(arg.substr(17));
        else if (arg == "--timeseries-out") timeseries_path = value();
        else if (arg == "--faults") fault_spec_str = value();
        else if (arg == "--fault-seeds")
            fault_seeds = std::stoi(value());
        else if (arg == "--retries") options.retries = std::stoi(value());
        else if (arg == "--backoff-ms")
            options.backoff_ms = std::stoull(value());
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] != '-' && grid_name.empty()) {
            grid_name = arg;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }

    if (list) {
        std::printf("registered sweep grids:\n");
        for (const SweepGrid &grid : sweepGrids())
            std::printf("  %-12s %s (%s)\n", grid.name.c_str(),
                        grid.title.c_str(), grid.paper_ref.c_str());
        return 0;
    }
    if (grid_name.empty()) {
        usage(argv[0]);
        return 1;
    }

    const SweepGrid *grid = findSweepGrid(grid_name);
    if (!grid)
        fatal("unknown sweep grid '%s' (see --list)",
              grid_name.c_str());

    // Oversubscription guard: the sweep runs jobs simulations at once
    // and each shards across sim-threads host threads. Results are
    // bit-identical at any sim-threads value, so clamping is purely a
    // wall-clock protection — jobs wins, sim-threads yields.
    if (params.sim_threads > 1) {
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        const SweepEngine probe(options);
        const unsigned jobs =
            static_cast<unsigned>(std::max(1, probe.jobs()));
        if (jobs * static_cast<unsigned>(params.sim_threads) > hw) {
            const int clamped =
                static_cast<int>(std::max(1u, hw / jobs));
            std::fprintf(stderr,
                         "warning: %u jobs x %d sim-threads "
                         "oversubscribes %u hardware threads; "
                         "clamping sim-threads to %d\n",
                         jobs, params.sim_threads, hw, clamped);
            params.sim_threads = clamped;
        }
    }

    if (!sweep_trace_path.empty()) {
        options.trace_capacity = TraceBuffer::default_capacity;
        options.trace_sample = trace_walks;
    }

    auto writeTraceFile = [&](const ResultSink &sink) {
        if (sweep_trace_path.empty())
            return;
        if (!sink.writeTrace(sweep_trace_path, trace_canonical))
            fatal("cannot write '%s'", sweep_trace_path.c_str());
        std::fprintf(stderr, "trace JSON:   %s\n",
                     sweep_trace_path.c_str());
    };

    auto writeTimeseriesFile = [&](const ResultSink &sink) {
        if (!options.sample_interval)
            return;
        if (timeseries_path.empty())
            timeseries_path = "timeseries_" + grid->name + ".json";
        if (!sink.writeTimeseries(timeseries_path))
            fatal("cannot write '%s'", timeseries_path.c_str());
        std::fprintf(stderr, "timeseries:   %s\n",
                     timeseries_path.c_str());
    };

    if (!fault_spec_str.empty()) {
        FaultCampaignOptions copts;
        copts.spec = parseFaultSpec(fault_spec_str);
        copts.fault_seeds = fault_seeds;
        std::printf("# Fault campaign: grid '%s', spec %s, "
                    "%d fault seeds, %d retries\n",
                    grid->name.c_str(),
                    faultSpecToString(copts.spec).c_str(),
                    copts.fault_seeds, options.retries);
        const SweepEngine engine(options);
        const ResultSink sink =
            engine.run(makeFaultCampaignJobs(*grid, params, copts));
        printFaultCampaignSummary(sink, copts);
        if (!no_json) {
            if (json_path.empty())
                json_path = "faults_" + grid->name + ".json";
            if (!sink.writeJson(json_path, "faults/" + grid->name,
                                options.base_seed, engine.jobs(),
                                /*canonical=*/true))
                fatal("cannot write '%s'", json_path.c_str());
            std::fprintf(stderr, "campaign JSON: %s\n",
                         json_path.c_str());
        }
        writeTraceFile(sink);
        writeTimeseriesFile(sink);
        // Surfaced faults are the campaign's product, not a sweep
        // failure: exit 0 as long as the process survived the grid.
        return 0;
    }

    const ResultSink sink = runSweepGrid(*grid, params, options);

    if (!no_json) {
        if (json_path.empty())
            json_path = "sweep_" + grid->name + ".json";
        const SweepEngine engine(options);
        if (!sink.writeJson(json_path, grid->name, options.base_seed,
                            engine.jobs()))
            fatal("cannot write '%s'", json_path.c_str());
        std::fprintf(stderr, "results JSON: %s\n", json_path.c_str());
    }
    if (!csv_path.empty()) {
        if (!sink.writeCsv(csv_path))
            fatal("cannot write '%s'", csv_path.c_str());
        std::fprintf(stderr, "results CSV:  %s\n", csv_path.c_str());
    }
    writeTraceFile(sink);
    writeTimeseriesFile(sink);

    const std::size_t failed = sink.failedCount();
    if (failed)
        std::fprintf(stderr, "%zu/%zu jobs failed\n", failed,
                     sink.size());
    return failed ? 2 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // The library throws typed SimErrors; the process boundary is the
    // one place that turns them into an exit code.
    try {
        return run(argc, argv);
    } catch (const SimError &e) {
        fatal("%s error: %s", e.kindName(), e.what());
    }
}
