/**
 * @file
 * The non-graph Table-4 workloads: HPCC GUPS, BioBench MUMmer, and
 * SysBench OLTP.
 */

#ifndef NECPT_WORKLOADS_OTHERS_HH
#define NECPT_WORKLOADS_OTHERS_HH

#include "workloads/workload.hh"

namespace necpt
{

/**
 * GUPS (Giga-Updates-Per-Second): uniformly random read-modify-write
 * updates over one enormous table — the canonical TLB torture test.
 * Nearly its whole footprint is huge-page friendly (Section 9.1 notes
 * GUPS "can exploit huge pages for the whole dataset").
 */
class GupsWorkload : public Workload
{
  public:
    GupsWorkload(std::uint64_t footprint_bytes,
                 std::uint64_t paper_footprint_bytes, std::uint64_t seed)
        : Workload(seed), footprint(footprint_bytes),
          paper_footprint(paper_footprint_bytes)
    {}

    Info info() const override
    {
        return {"GUPS", "HPC", "HPCC", footprint, paper_footprint};
    }

    void setup(NestedSystem &sys) override;
    MemAccess next() override;

  private:
    std::uint64_t footprint;
    std::uint64_t paper_footprint;
    Addr table_base = 0;
    Addr random_base = 0;
    std::uint64_t table_words = 0;
    std::uint64_t seq_cursor = 0;
    Addr pending_write = 0; //!< RMW second half
};

/**
 * MUMmer: suffix-tree matching. Streams the reference sequence while
 * chasing pointers down a large suffix tree whose upper levels are
 * hot — giving it strong huge-page affinity (Figure 14).
 */
class MummerWorkload : public Workload
{
  public:
    MummerWorkload(std::uint64_t footprint_bytes,
                   std::uint64_t paper_footprint_bytes, std::uint64_t seed)
        : Workload(seed), footprint(footprint_bytes),
          paper_footprint(paper_footprint_bytes)
    {}

    Info info() const override
    {
        return {"MUMmer", "Bioinformatics", "BioBench", footprint,
                paper_footprint};
    }

    void setup(NestedSystem &sys) override;
    MemAccess next() override;

  private:
    std::uint64_t footprint;
    std::uint64_t paper_footprint;
    Addr text_base = 0;
    Addr tree_base = 0;
    std::uint64_t text_bytes = 0;
    std::uint64_t tree_nodes = 0;
    std::uint64_t text_cursor = 0;
    std::uint64_t cur_node = 0;
    int depth = 0;
};

/**
 * SysBench OLTP: zipf-skewed row lookups through a small hot B-tree
 * index into a very large row heap, plus sequential log appends.
 */
class SysbenchWorkload : public Workload
{
  public:
    SysbenchWorkload(std::uint64_t footprint_bytes,
                     std::uint64_t paper_footprint_bytes,
                     std::uint64_t seed)
        : Workload(seed), footprint(footprint_bytes),
          paper_footprint(paper_footprint_bytes)
    {}

    Info info() const override
    {
        return {"SysBench", "Systems", "SysBench", footprint,
                paper_footprint};
    }

    void setup(NestedSystem &sys) override;
    MemAccess next() override;

  private:
    static constexpr std::uint64_t row_bytes = 256;

    std::uint64_t footprint;
    std::uint64_t paper_footprint;
    Addr index_base = 0;
    Addr rows_base = 0;
    Addr log_base = 0;
    std::uint64_t num_rows = 0;
    std::uint64_t index_nodes = 0;
    std::uint64_t log_bytes = 0;
    std::uint64_t log_cursor = 0;
    std::uint64_t cur_row = 0;
    std::uint64_t index_node = 0;
    int phase = 0;
};

} // namespace necpt

#endif // NECPT_WORKLOADS_OTHERS_HH
