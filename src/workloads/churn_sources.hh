/**
 * @file
 * Churn scenario generators: the OS/hypervisor background daemons that
 * mutate translations while the access kernels run, driving the
 * coherence subsystem with realistic invalidation streams.
 *
 *  - MigrationDaemon: NUMA rebalancer re-backing resident pages.
 *  - BalloonDriver: alternating balloon inflate (unmap + free) and
 *    deflate (refault) passes.
 *  - ThpCompactor: khugepaged and its inverse — alternating 2MB
 *    demote (split) and promote (collapse) passes over the same
 *    regions.
 *  - ProtectScrubber: write-protect downgrades (dirty tracking).
 *
 * Each source owns a private seeded Rng, so its victim sequence is a
 * pure function of (spec, seed) and independent of every other
 * stochastic stream in the run. Sources perform the functional
 * mutation through NestedSystem and queue the matching invalidations
 * on the CoherenceController; the Simulator decides *when* they fire.
 */

#ifndef NECPT_WORKLOADS_CHURN_SOURCES_HH
#define NECPT_WORKLOADS_CHURN_SOURCES_HH

#include <memory>
#include <string>
#include <vector>

#include "coherence/controller.hh"
#include "common/rng.hh"
#include "os/system.hh"

namespace necpt
{

/**
 * One background mutation daemon. fire() runs a full pass (several
 * pages) — the event loop calls it every period() cycles.
 */
class ChurnSource
{
  public:
    ChurnSource(std::string name, Cycles period, std::uint64_t seed)
        : rng(seed), name_(std::move(name)), period_(period)
    {}

    virtual ~ChurnSource() = default;

    const std::string &name() const { return name_; }
    Cycles period() const { return period_; }

    /** Run one pass: mutate @p sys, queue invalidations on @p ctrl. */
    virtual void fire(NestedSystem &sys, CoherenceController &ctrl) = 0;

  protected:
    /**
     * Page-aligned victim address, uniform over *mapped bytes* (a VMA's
     * weight is its size, like a daemon scanning pages in address
     * order) — an index-uniform pick would concentrate the churn on
     * the small VMAs and almost never touch the data arrays the
     * workload actually walks.
     */
    Addr
    pickVa(NestedSystem &sys)
    {
        const std::size_t n = sys.vmaCount();
        if (n == 0)
            return invalid_addr;
        std::uint64_t total_pages = 0;
        for (std::size_t i = 0; i < n; ++i)
            total_pages += sys.vmaRange(i).second >> 12;
        if (total_pages == 0)
            return invalid_addr;
        std::uint64_t pick = rng.below(total_pages);
        for (std::size_t i = 0; i < n; ++i) {
            const auto [base, bytes] = sys.vmaRange(i);
            const std::uint64_t pages = bytes >> 12;
            if (pick < pages)
                return base + (pick << 12);
            pick -= pages;
        }
        return invalid_addr;
    }

    Rng rng;

  private:
    std::string name_;
    Cycles period_;
};

/** NUMA migration daemon: re-backs N resident pages per pass. */
class MigrationDaemon : public ChurnSource
{
  public:
    MigrationDaemon(Cycles period, int pages, std::uint64_t seed)
        : ChurnSource("migrate", period, seed), pages_(pages)
    {}

    void fire(NestedSystem &sys, CoherenceController &ctrl) override;

  private:
    int pages_;
};

/** Balloon driver: alternating inflate and deflate passes. */
class BalloonDriver : public ChurnSource
{
  public:
    BalloonDriver(Cycles period, int pages, std::uint64_t seed)
        : ChurnSource("balloon", period, seed), pages_(pages)
    {}

    void fire(NestedSystem &sys, CoherenceController &ctrl) override;

  private:
    int pages_;
    bool inflating = true;
    std::vector<Addr> ballooned; //!< pages awaiting deflate
};

/** THP compactor: alternating demote and promote over 2MB regions. */
class ThpCompactor : public ChurnSource
{
  public:
    ThpCompactor(Cycles period, int blocks, std::uint64_t seed)
        : ChurnSource("thp", period, seed), blocks_(blocks)
    {}

    void fire(NestedSystem &sys, CoherenceController &ctrl) override;

  private:
    int blocks_;
    bool demoting = true;
    std::vector<Addr> split; //!< 2MB regions awaiting re-promotion
};

/** Write-protect scrubber: downgrades N resident pages per pass. */
class ProtectScrubber : public ChurnSource
{
  public:
    ProtectScrubber(Cycles period, int pages, std::uint64_t seed)
        : ChurnSource("protect", period, seed), pages_(pages)
    {}

    void fire(NestedSystem &sys, CoherenceController &ctrl) override;

  private:
    int pages_;
};

/** Build every source the spec arms, in fixed order, each on its own
 *  splitmix-derived seed stream. */
std::vector<std::unique_ptr<ChurnSource>>
makeChurnSources(const ChurnSpec &spec, std::uint64_t seed);

} // namespace necpt

#endif // NECPT_WORKLOADS_CHURN_SOURCES_HH
