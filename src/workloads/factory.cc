#include "workloads/workload.hh"

#include "common/error.hh"
#include "common/log.hh"
#include "workloads/graph.hh"
#include "workloads/others.hh"

namespace necpt
{

namespace
{

constexpr std::uint64_t GB = 1ULL << 30;
constexpr std::uint64_t MB = 1ULL << 20;

/** Table-4 footprints in MB. */
struct AppEntry
{
    const char *name;
    std::uint64_t paper_mb;
};

constexpr AppEntry app_table[] = {
    {"BC", 17715},      // 17.3 GB
    {"BFS", 9523},      // 9.3 GB
    {"CC", 9523},       // 9.3 GB
    {"DC", 9523},       // 9.3 GB
    {"DFS", 9216},      // 9.0 GB
    {"GUPS", 65536},    // 64.0 GB
    {"MUMmer", 7066},   // 6.9 GB
    {"PR", 9523},       // 9.3 GB
    {"SSSP", 9523},     // 9.3 GB
    {"SysBench", 65536},// 64.0 GB
    {"TC", 12186},      // 11.9 GB
};

} // namespace

const std::vector<std::string> &
paperApplications()
{
    static const std::vector<std::string> apps = {
        "BC", "BFS", "CC", "DC", "DFS", "GUPS",
        "MUMmer", "PR", "SSSP", "SysBench", "TC",
    };
    return apps;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, std::uint64_t scale_denominator,
             std::uint64_t seed)
{
    NECPT_ASSERT(scale_denominator >= 1);
    std::uint64_t paper_bytes = 0;
    for (const AppEntry &entry : app_table)
        if (name == entry.name)
            paper_bytes = entry.paper_mb * MB;
    if (paper_bytes == 0)
        throw ConfigError(strfmt("unknown workload '%s'", name.c_str()));

    // Keep every scaled footprint large enough that the *translation*
    // working set (roughly footprint/256: one table line per 8 pages)
    // still exceeds the per-core cache hierarchy several times over,
    // as it does at paper scale — the regime the evaluation studies.
    std::uint64_t bytes = paper_bytes / scale_denominator;
    constexpr std::uint64_t floor_bytes = 2560 * MB;
    if (bytes < floor_bytes)
        bytes = floor_bytes;
    (void)GB;

    std::uint64_t sm = seed ^ std::hash<std::string>{}(name);
    const std::uint64_t wl_seed = splitmix64(sm);

    if (name == "GUPS")
        return std::make_unique<GupsWorkload>(bytes, paper_bytes,
                                              wl_seed);
    if (name == "MUMmer")
        return std::make_unique<MummerWorkload>(bytes, paper_bytes,
                                                wl_seed);
    if (name == "SysBench")
        return std::make_unique<SysbenchWorkload>(bytes, paper_bytes,
                                                  wl_seed);

    GraphKernel kernel = GraphKernel::PR;
    if (name == "BC") kernel = GraphKernel::BC;
    else if (name == "BFS") kernel = GraphKernel::BFS;
    else if (name == "CC") kernel = GraphKernel::CC;
    else if (name == "DC") kernel = GraphKernel::DC;
    else if (name == "DFS") kernel = GraphKernel::DFS;
    else if (name == "PR") kernel = GraphKernel::PR;
    else if (name == "SSSP") kernel = GraphKernel::SSSP;
    else if (name == "TC") kernel = GraphKernel::TC;

    return std::make_unique<GraphWorkload>(kernel, bytes, paper_bytes,
                                           wl_seed);
}

} // namespace necpt
