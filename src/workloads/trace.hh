/**
 * @file
 * Trace capture and replay.
 *
 * A recorded trace lets users drive the simulator with access streams
 * from outside this repo (e.g. Pin/DynamoRIO captures of real
 * applications) and makes any synthetic stream inspectable. The file
 * format is a small header followed by fixed-size little-endian
 * records:
 *
 *   magic  u64  "NECPTTRC"
 *   count  u64  number of records
 *   vmas   u64  number of VMA descriptors
 *   {base u64, bytes u64, flags u64} x vmas
 *   {vaddr u64, write u8, inst_gap u8, pad[6]} x count
 */

#ifndef NECPT_WORKLOADS_TRACE_HH
#define NECPT_WORKLOADS_TRACE_HH

#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace necpt
{

/** Trace file magic ("NECPTTRC" little-endian). Exposed so fault
 *  campaigns and tests can forge deliberately corrupt traces. */
constexpr std::uint64_t trace_file_magic = 0x4352'5454'5043'454EULL;

/** One VMA a trace needs mapped before replay. */
struct TraceVma
{
    Addr base;
    std::uint64_t bytes;
    bool thp_eligible;
};

/**
 * Capture a workload's stream to a trace file.
 *
 * @param source workload to record (will be set up against @p sys)
 * @param sys system used for region allocation during capture
 * @param accesses number of records to capture
 * @param path output file
 * @return true on success
 */
bool recordTrace(Workload &source, NestedSystem &sys,
                 std::uint64_t accesses, const std::string &path);

/**
 * A workload that replays a trace file (looping when the simulation
 * needs more accesses than the trace holds).
 */
class TraceWorkload : public Workload
{
  public:
    explicit TraceWorkload(const std::string &path);

    /** Always true once constructed: the constructor throws a
     *  TraceError (naming the file and byte offset) on any missing,
     *  truncated, or corrupt input. Kept for API compatibility. */
    bool valid() const { return loaded; }

    Info info() const override;
    void setup(NestedSystem &sys) override;
    MemAccess next() override;

    std::uint64_t recordCount() const { return records.size(); }

  private:
    std::string path_;
    bool loaded = false;
    std::vector<TraceVma> vmas;
    std::vector<MemAccess> records;
    std::size_t cursor = 0;
    /** Replay offset: trace VAs are rebased onto the fresh VMAs. */
    std::vector<Addr> vma_bias;
    std::uint64_t footprint = 0;
};

} // namespace necpt

#endif // NECPT_WORKLOADS_TRACE_HH
