#include "workloads/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/error.hh"
#include "common/log.hh"

namespace necpt
{

namespace
{

constexpr std::uint64_t trace_magic = trace_file_magic;

struct Record
{
    std::uint64_t vaddr;
    std::uint8_t write;
    std::uint8_t inst_gap;
    std::uint8_t pad[6];
};
static_assert(sizeof(Record) == 16);

} // namespace

bool
recordTrace(Workload &source, NestedSystem &sys, std::uint64_t accesses,
            const std::string &path)
{
    // Capture VMAs by observing the access range per region: simplest
    // faithful approach is to set the workload up and record which
    // VMAs it created. The NestedSystem does not expose its VMA list,
    // so the recorder snapshots pool growth per region via a probe
    // VMA. Instead, we conservatively record one covering VMA per
    // trace (min..max address), which replay maps THP-eligible.
    source.setup(sys);

    std::vector<Record> records;
    records.reserve(accesses);
    Addr lo = invalid_addr, hi = 0;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        const MemAccess a = source.next();
        records.push_back({a.vaddr, a.write ? std::uint8_t{1}
                                            : std::uint8_t{0},
                           a.inst_gap, {}});
        lo = std::min(lo, a.vaddr);
        hi = std::max(hi, a.vaddr);
    }

    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        return false;
    const std::uint64_t header[3] = {trace_magic, accesses, 1};
    const std::uint64_t vma[3] = {alignDown(lo, 2ULL << 20),
                                  alignUp(hi + 1, 2ULL << 20)
                                      - alignDown(lo, 2ULL << 20),
                                  1 /* thp eligible */};
    bool ok = std::fwrite(header, sizeof(header), 1, file) == 1
        && std::fwrite(vma, sizeof(vma), 1, file) == 1
        && std::fwrite(records.data(), sizeof(Record), records.size(),
                       file) == records.size();
    std::fclose(file);
    return ok;
}

TraceWorkload::TraceWorkload(const std::string &path)
    : Workload(0), path_(path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        throw TraceError(path, 0, "cannot open file");
    struct Closer
    {
        std::FILE *f;
        ~Closer() { std::fclose(f); }
    } closer{file};

    std::fseek(file, 0, SEEK_END);
    const long end = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    const std::uint64_t file_bytes =
        end < 0 ? 0 : static_cast<std::uint64_t>(end);

    std::uint64_t header[3];
    if (file_bytes < sizeof(header)
        || std::fread(header, sizeof(header), 1, file) != 1)
        throw TraceError(path, file_bytes, strfmt(
            "truncated header (%zu bytes needed)", sizeof(header)));
    if (header[0] != trace_magic)
        throw TraceError(path, 0, strfmt(
            "bad magic 0x%016llx (not a NECPTTRC trace)",
            (unsigned long long)header[0]));
    const std::uint64_t count = header[1];
    const std::uint64_t num_vmas = header[2];
    if (count == 0)
        throw TraceError(path, 8, "trace holds zero records");

    const std::uint64_t vma_end =
        sizeof(header) + num_vmas * 3 * sizeof(std::uint64_t);
    if (num_vmas > file_bytes || file_bytes < vma_end)
        throw TraceError(path, file_bytes, strfmt(
            "truncated VMA table (%llu descriptors promised, table "
            "ends at byte %llu)", (unsigned long long)num_vmas,
            (unsigned long long)vma_end));
    for (std::uint64_t i = 0; i < num_vmas; ++i) {
        std::uint64_t vma[3];
        if (std::fread(vma, sizeof(vma), 1, file) != 1)
            throw TraceError(path, sizeof(header) + i * sizeof(vma),
                             "unreadable VMA descriptor");
        vmas.push_back({vma[0], vma[1], vma[2] != 0});
        footprint += vma[1];
    }

    // The record region must hold exactly the promised records: a
    // byte count that is not a multiple of sizeof(Record) means the
    // capture was cut mid-record, and a whole-record shortfall or
    // surplus means the header lies — both are corruption, reported
    // at the byte where the file stops matching its own header.
    const std::uint64_t payload = file_bytes - vma_end;
    if (payload % sizeof(Record) != 0)
        throw TraceError(path, file_bytes - payload % sizeof(Record),
                         strfmt("partial trailing record (%llu stray "
                                "bytes; records are %zu bytes)",
                                (unsigned long long)(payload
                                                     % sizeof(Record)),
                                sizeof(Record)));
    if (payload / sizeof(Record) != count)
        throw TraceError(path, vma_end + count * sizeof(Record),
                         strfmt("header promises %llu records but the "
                                "file holds %llu",
                                (unsigned long long)count,
                                (unsigned long long)(payload
                                                     / sizeof(Record))));

    records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Record r;
        if (std::fread(&r, sizeof(r), 1, file) != 1)
            throw TraceError(path, vma_end + i * sizeof(Record),
                             "unreadable record");
        records.push_back({r.vaddr, r.write != 0, r.inst_gap});
    }
    loaded = true;
}

Workload::Info
TraceWorkload::info() const
{
    return {"Trace(" + path_ + ")", "Replay", "trace", footprint,
            footprint};
}

void
TraceWorkload::setup(NestedSystem &sys)
{
    NECPT_ASSERT(loaded); // the constructor throws on any parse failure
    vma_bias.clear();
    for (const TraceVma &vma : vmas) {
        const Addr base = sys.mmapRegion(vma.bytes, vma.thp_eligible);
        vma_bias.push_back(base - vma.base);
    }
    cursor = 0;
}

MemAccess
TraceWorkload::next()
{
    NECPT_ASSERT(loaded && !records.empty());
    MemAccess a = records[cursor];
    cursor = (cursor + 1) % records.size();
    // Rebase onto the replay VMA covering this address.
    for (std::size_t i = 0; i < vmas.size(); ++i) {
        if (a.vaddr >= vmas[i].base
            && a.vaddr < vmas[i].base + vmas[i].bytes) {
            a.vaddr += vma_bias[i];
            break;
        }
    }
    return a;
}

} // namespace necpt
