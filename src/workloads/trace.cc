#include "workloads/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/log.hh"

namespace necpt
{

namespace
{

constexpr std::uint64_t trace_magic = 0x4352'5454'5043'454EULL; // NECPTTRC

struct Record
{
    std::uint64_t vaddr;
    std::uint8_t write;
    std::uint8_t inst_gap;
    std::uint8_t pad[6];
};
static_assert(sizeof(Record) == 16);

} // namespace

bool
recordTrace(Workload &source, NestedSystem &sys, std::uint64_t accesses,
            const std::string &path)
{
    // Capture VMAs by observing the access range per region: simplest
    // faithful approach is to set the workload up and record which
    // VMAs it created. The NestedSystem does not expose its VMA list,
    // so the recorder snapshots pool growth per region via a probe
    // VMA. Instead, we conservatively record one covering VMA per
    // trace (min..max address), which replay maps THP-eligible.
    source.setup(sys);

    std::vector<Record> records;
    records.reserve(accesses);
    Addr lo = invalid_addr, hi = 0;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        const MemAccess a = source.next();
        records.push_back({a.vaddr, a.write ? std::uint8_t{1}
                                            : std::uint8_t{0},
                           a.inst_gap, {}});
        lo = std::min(lo, a.vaddr);
        hi = std::max(hi, a.vaddr);
    }

    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        return false;
    const std::uint64_t header[3] = {trace_magic, accesses, 1};
    const std::uint64_t vma[3] = {alignDown(lo, 2ULL << 20),
                                  alignUp(hi + 1, 2ULL << 20)
                                      - alignDown(lo, 2ULL << 20),
                                  1 /* thp eligible */};
    bool ok = std::fwrite(header, sizeof(header), 1, file) == 1
        && std::fwrite(vma, sizeof(vma), 1, file) == 1
        && std::fwrite(records.data(), sizeof(Record), records.size(),
                       file) == records.size();
    std::fclose(file);
    return ok;
}

TraceWorkload::TraceWorkload(const std::string &path)
    : Workload(0), path_(path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return;
    std::uint64_t header[3];
    if (std::fread(header, sizeof(header), 1, file) != 1
        || header[0] != trace_magic) {
        std::fclose(file);
        return;
    }
    const std::uint64_t count = header[1];
    const std::uint64_t num_vmas = header[2];
    for (std::uint64_t i = 0; i < num_vmas; ++i) {
        std::uint64_t vma[3];
        if (std::fread(vma, sizeof(vma), 1, file) != 1) {
            std::fclose(file);
            return;
        }
        vmas.push_back({vma[0], vma[1], vma[2] != 0});
        footprint += vma[1];
    }
    records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Record r;
        if (std::fread(&r, sizeof(r), 1, file) != 1)
            break;
        records.push_back({r.vaddr, r.write != 0, r.inst_gap});
    }
    std::fclose(file);
    loaded = records.size() == count;
}

Workload::Info
TraceWorkload::info() const
{
    return {"Trace(" + path_ + ")", "Replay", "trace", footprint,
            footprint};
}

void
TraceWorkload::setup(NestedSystem &sys)
{
    if (!loaded)
        fatal("trace '%s' failed to load", path_.c_str());
    vma_bias.clear();
    for (const TraceVma &vma : vmas) {
        const Addr base = sys.mmapRegion(vma.bytes, vma.thp_eligible);
        vma_bias.push_back(base - vma.base);
    }
    cursor = 0;
}

MemAccess
TraceWorkload::next()
{
    NECPT_ASSERT(loaded && !records.empty());
    MemAccess a = records[cursor];
    cursor = (cursor + 1) % records.size();
    // Rebase onto the replay VMA covering this address.
    for (std::size_t i = 0; i < vmas.size(); ++i) {
        if (a.vaddr >= vmas[i].base
            && a.vaddr < vmas[i].base + vmas[i].bytes) {
            a.vaddr += vma_bias[i];
            break;
        }
    }
    return a;
}

} // namespace necpt
