#include "workloads/others.hh"

#include "common/log.hh"

namespace necpt
{

// ---------------------------------------------------------------- GUPS

void
GupsWorkload::setup(NestedSystem &sys)
{
    table_words = (footprint * 63 / 64) / 8;
    table_base = sys.mmapRegion(table_words * 8, true);
    random_base = sys.mmapRegion(footprint / 64, true);
    seq_cursor = 0;
    pending_write = 0;
}

MemAccess
GupsWorkload::next()
{
    if (pending_write) {
        // Second half of the read-modify-write update.
        const Addr addr = pending_write;
        pending_write = 0;
        return {addr, true, 1};
    }
    // Every 16th access streams the "random numbers" input array.
    if ((seq_cursor++ & 0xF) == 0) {
        const Addr addr =
            random_base + (seq_cursor * 8) % (footprint / 64);
        return {addr, false, 2};
    }
    const Addr addr = table_base + rng.below(table_words) * 8;
    pending_write = addr;
    return {addr, false, 2};
}

// -------------------------------------------------------------- MUMmer

void
MummerWorkload::setup(NestedSystem &sys)
{
    text_bytes = footprint / 8;
    tree_nodes = (footprint - text_bytes) / 64;
    text_base = sys.mmapRegion(text_bytes, true);
    tree_base = sys.mmapRegion(tree_nodes * 64, true);
    text_cursor = 0;
    cur_node = 0;
    depth = 0;
}

MemAccess
MummerWorkload::next()
{
    if (depth == 0) {
        // Consume the next query character (sequential stream) and
        // restart the match from the (hot) tree root region.
        cur_node = rng.below(64);
        depth = 1 + static_cast<int>(rng.below(12));
        const Addr addr = text_base + (text_cursor++ % text_bytes);
        return {addr, false, 2};
    }
    // Descend one level: children of shallow nodes are clustered near
    // the top of the tree region (hot), deep nodes spread out.
    --depth;
    std::uint64_t sm = cur_node * 0x9E3779B97F4A7C15ULL + depth;
    const std::uint64_t jump = splitmix64(sm);
    const std::uint64_t spread =
        tree_nodes >> (depth > 8 ? 0 : (8 - depth));
    cur_node = (cur_node * 8 + jump % (spread ? spread : 1)) % tree_nodes;
    return {tree_base + cur_node * 64, false, 3};
}

// ------------------------------------------------------------ SysBench

void
SysbenchWorkload::setup(NestedSystem &sys)
{
    log_bytes = footprint / 64;
    const std::uint64_t index_bytes = footprint / 32;
    index_nodes = index_bytes / 64;
    num_rows = (footprint - log_bytes - index_bytes) / row_bytes;
    index_base = sys.mmapRegion(index_bytes, true);
    rows_base = sys.mmapRegion(num_rows * row_bytes, true);
    log_base = sys.mmapRegion(log_bytes, true);
    log_cursor = 0;
    phase = 0;
}

MemAccess
SysbenchWorkload::next()
{
    switch (phase) {
      case 0: {
        // Pick a row (zipf-skewed OLTP popularity) and walk the index
        // root level (very hot).
        cur_row = rng.zipf(num_rows, 0.4);
        index_node = cur_row % 64;
        phase = 1;
        return {index_base + index_node * 64, false, 4};
      }
      case 1: {
        // Inner index level.
        index_node = (cur_row / 64) % (index_nodes / 8 + 1);
        phase = 2;
        return {index_base + (index_nodes / 8 + index_node) * 64, false,
                2};
      }
      case 2: {
        // Leaf index level.
        index_node = cur_row % (index_nodes / 2 + 1);
        phase = 3;
        return {index_base + (index_nodes / 2 + index_node) * 64, false,
                2};
      }
      case 3: {
        // The row itself.
        phase = rng.chance(0.3) ? 4 : 0;
        return {rows_base + cur_row * row_bytes, false, 4};
      }
      case 4:
        // Update: write the row...
        phase = 5;
        return {rows_base + cur_row * row_bytes + 64, true, 2};
      default: {
        // ...and append to the log.
        phase = 0;
        const Addr addr = log_base + (log_cursor % log_bytes);
        log_cursor += 64;
        return {addr, true, 3};
      }
    }
}

} // namespace necpt
