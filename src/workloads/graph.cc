#include "workloads/graph.hh"

#include "common/hash.hh"
#include "common/log.hh"

namespace necpt
{

namespace
{

const char *
kernelName(GraphKernel kernel)
{
    switch (kernel) {
      case GraphKernel::BC: return "BC";
      case GraphKernel::BFS: return "BFS";
      case GraphKernel::CC: return "CC";
      case GraphKernel::DC: return "DC";
      case GraphKernel::DFS: return "DFS";
      case GraphKernel::PR: return "PR";
      case GraphKernel::SSSP: return "SSSP";
      case GraphKernel::TC: return "TC";
    }
    return "?";
}

/** Per-kernel number of 8-byte property arrays (BC keeps several). */
int
kernelProps(GraphKernel kernel)
{
    switch (kernel) {
      case GraphKernel::BC: return 4;   // sigma, delta, dist, bc
      case GraphKernel::SSSP: return 2; // dist, pred
      case GraphKernel::TC: return 2;   // count, marks
      default: return 1;
    }
}

} // namespace

GraphWorkload::GraphWorkload(GraphKernel kernel_sel,
                             std::uint64_t footprint_bytes,
                             std::uint64_t paper_footprint_bytes,
                             std::uint64_t seed)
    : Workload(seed), kernel(kernel_sel), footprint(footprint_bytes),
      paper_footprint(paper_footprint_bytes)
{
    num_props = kernelProps(kernel);
    // footprint = offsets (8B) + edges (deg*8B) + props (num_props*8B)
    const std::uint64_t bytes_per_vertex =
        8 + deg * 8 + static_cast<std::uint64_t>(num_props) * 8;
    vertices = footprint / bytes_per_vertex;
    NECPT_ASSERT(vertices > 1024);
}

Workload::Info
GraphWorkload::info() const
{
    return {kernelName(kernel), "Graph analytics", "GraphBIG", footprint,
            paper_footprint};
}

void
GraphWorkload::setup(NestedSystem &sys)
{
    offsets_base = sys.mmapRegion(vertices * 8);
    edges_base = sys.mmapRegion(vertices * deg * 8);
    for (int p = 0; p < num_props; ++p)
        prop_base[p] = sys.mmapRegion(vertices * 8);
    cur_vertex = 0;
    cur_edge = 0;
    chase_vertex = 0;
    phase = 0;
}

std::uint64_t
GraphWorkload::target(std::uint64_t u, std::uint64_t i) const
{
    // Deterministic per-edge hash; a slice of edges points at globally
    // popular vertices (power-law in-degree), the rest are uniform.
    std::uint64_t sm = (u * 0x9E3779B97F4A7C15ULL) ^ (i + 1);
    const std::uint64_t h = splitmix64(sm);
    if ((h & 0xFF) < static_cast<std::uint64_t>(skew * 256)) {
        // Popular target: quadratic concentration near vertex 0.
        const double f = static_cast<double>(splitmix64(sm) >> 11)
            * 0x1.0p-53;
        return static_cast<std::uint64_t>(f * f
                                          * static_cast<double>(vertices));
    }
    return splitmix64(sm) % vertices;
}

MemAccess
GraphWorkload::next()
{
    switch (kernel) {
      case GraphKernel::PR:
        // Pull-style PageRank: stream offsets/edges, gather ranks.
        switch (phase) {
          case 0:
            phase = 1;
            return read(offsetAddr(cur_vertex), 2);
          case 1: {
            const auto i = cur_edge;
            phase = 2;
            return read(edgeAddr(cur_vertex, i), 1);
          }
          default: {
            const auto v = target(cur_vertex, cur_edge);
            if (++cur_edge >= deg) {
                cur_edge = 0;
                cur_vertex = (cur_vertex + 1) % vertices;
                phase = 0;
            } else {
                phase = 1;
            }
            return read(propAddr(0, v), 4);
          }
        }

      case GraphKernel::DC:
        // Degree centrality: stream every edge, bump the target's
        // counter — random writes across the whole property array.
        switch (phase) {
          case 0: {
            const auto i = cur_edge;
            phase = 1;
            return read(edgeAddr(cur_vertex, i), 2);
          }
          default: {
            const auto v = target(cur_vertex, cur_edge);
            if (++cur_edge >= deg) {
                cur_edge = 0;
                cur_vertex = (cur_vertex + 1) % vertices;
            }
            phase = 0;
            return write(propAddr(0, v), 2);
          }
        }

      case GraphKernel::CC:
        // Hook step: read both endpoint components per edge.
        switch (phase) {
          case 0:
            phase = 1;
            return read(edgeAddr(cur_vertex, cur_edge), 2);
          case 1:
            phase = 2;
            return read(propAddr(0, cur_vertex), 2);
          default: {
            const auto v = target(cur_vertex, cur_edge);
            if (++cur_edge >= deg) {
                cur_edge = 0;
                cur_vertex = (cur_vertex + 1) % vertices;
            }
            phase = 0;
            return read(propAddr(0, v), 3);
          }
        }

      case GraphKernel::BFS:
      case GraphKernel::SSSP: {
        // Frontier expansion: per processed vertex, scan its edges and
        // touch the per-target state (visited / dist) randomly.
        const bool sssp = kernel == GraphKernel::SSSP;
        switch (phase) {
          case 0:
            // Pop the next frontier vertex (queue locality).
            chase_vertex = rng.below(vertices);
            phase = 1;
            return read(offsetAddr(chase_vertex), 2);
          case 1:
            phase = 2;
            return read(edgeAddr(chase_vertex, cur_edge), 1);
          case 2: {
            const auto v = target(chase_vertex, cur_edge);
            phase = sssp ? 3 : 4;
            chase_vertex ^= 0; // keep cursor
            cur_vertex = v;
            return read(propAddr(0, v), 3);
          }
          case 3:
            // SSSP relaxation write to dist.
            phase = 4;
            return write(propAddr(1, cur_vertex), 2);
          default:
            if (++cur_edge >= deg) {
                cur_edge = 0;
                phase = 0;
            } else {
                phase = 1;
            }
            // Mark / enqueue (frontier writes are fairly local).
            return write(propAddr(0, cur_vertex), 3);
        }
      }

      case GraphKernel::DFS:
        // Deep dependent pointer chase: one neighbor per step.
        switch (phase) {
          case 0:
            phase = 1;
            return read(offsetAddr(chase_vertex), 2);
          case 1:
            phase = 2;
            return read(edgeAddr(chase_vertex, cur_edge), 1);
          default: {
            chase_vertex = target(chase_vertex, cur_edge);
            cur_edge = rng.below(deg);
            phase = 0;
            // Occasional restart keeps the walk covering the graph.
            if (rng.chance(1.0 / 64))
                chase_vertex = rng.below(vertices);
            return read(propAddr(0, chase_vertex), 3);
          }
        }

      case GraphKernel::TC:
        // Triangle counting: for each edge (u,v), probe u's and v's
        // adjacency lists pairwise — heavy random reads in the edge
        // region.
        switch (phase) {
          case 0:
            phase = 1;
            return read(edgeAddr(cur_vertex, cur_edge), 2);
          case 1: {
            chase_vertex = target(cur_vertex, cur_edge);
            phase = 2;
            return read(offsetAddr(chase_vertex), 1);
          }
          default: {
            // Binary-search probe into the neighbor's adjacency list.
            const auto probe = rng.below(deg);
            if (rng.chance(0.25)) {
                if (++cur_edge >= deg) {
                    cur_edge = 0;
                    cur_vertex = (cur_vertex + 1) % vertices;
                }
                phase = 0;
            }
            return read(edgeAddr(chase_vertex, probe), 2);
          }
        }

      case GraphKernel::BC:
      default:
        // Brandes BC: BFS-like traversal touching several property
        // arrays per visited edge (sigma/dist forward, delta backward).
        switch (phase) {
          case 0:
            chase_vertex = rng.below(vertices);
            phase = 1;
            return read(offsetAddr(chase_vertex), 2);
          case 1:
            phase = 2;
            return read(edgeAddr(chase_vertex, cur_edge), 1);
          case 2:
            cur_vertex = target(chase_vertex, cur_edge);
            phase = 3;
            return read(propAddr(2, cur_vertex), 2); // dist
          case 3:
            phase = 4;
            return read(propAddr(0, cur_vertex), 2); // sigma
          case 4:
            phase = 5;
            return write(propAddr(1, cur_vertex), 2); // delta
          default:
            if (++cur_edge >= deg) {
                cur_edge = 0;
                phase = 0;
            } else {
                phase = 1;
            }
            return write(propAddr(3, chase_vertex), 3); // bc accum
        }
    }
}

} // namespace necpt
