#include "workloads/churn_sources.hh"

namespace necpt
{

namespace
{

/** 4KB-page count of a mapping (the churn metrics' unit). */
std::uint64_t
pages4k(PageSize size)
{
    return pageBytes(size) / pageBytes(PageSize::Page4K);
}

} // namespace

void
MigrationDaemon::fire(NestedSystem &sys, CoherenceController &ctrl)
{
    for (int i = 0; i < pages_; ++i) {
        const Addr gva = pickVa(sys);
        if (gva == invalid_addr)
            return;
        const Translation g = sys.guestTranslate(gva);
        // Ballooned-out (not yet refaulted) victims just skip a slot —
        // the miss itself is deterministic.
        if (!g.valid || !sys.migratePage(gva))
            continue;
        Invalidation inv;
        inv.gva = pageBase(gva, g.size);
        inv.bytes = pageBytes(g.size);
        inv.gpa = pageBase(g.pa, g.size);
        inv.gpa_bytes = pageBytes(g.size);
        inv.kind = InvalKind::Remap;
        ctrl.queueInvalidation(inv);
        ctrl.noteChurnOp(ChurnOp::Migrate, pages4k(g.size));
    }
}

void
BalloonDriver::fire(NestedSystem &sys, CoherenceController &ctrl)
{
    if (inflating) {
        for (int i = 0; i < pages_; ++i) {
            const Addr gva = pickVa(sys);
            if (gva == invalid_addr)
                return;
            const NestedSystem::UnmapInfo info = sys.balloonOut(gva);
            if (!info.ok)
                continue;
            Invalidation inv;
            inv.gva = info.page;
            inv.bytes = pageBytes(info.old_guest.size);
            inv.gpa = pageBase(info.old_guest.pa, info.old_guest.size);
            inv.gpa_bytes = inv.bytes;
            inv.kind = InvalKind::Unmap;
            ctrl.queueInvalidation(inv);
            ctrl.noteChurnOp(ChurnOp::BalloonOut,
                             pages4k(info.old_guest.size));
            ballooned.push_back(info.page);
        }
    } else {
        // Deflate: refault what the last inflate removed. The fresh
        // mappings are new — nothing cached can be stale, so no
        // invalidations are queued.
        for (const Addr page : ballooned) {
            sys.ensureResident(page);
            ctrl.noteChurnOp(ChurnOp::BalloonIn, 1);
        }
        ballooned.clear();
    }
    inflating = !inflating;
}

void
ThpCompactor::fire(NestedSystem &sys, CoherenceController &ctrl)
{
    if (demoting) {
        for (int b = 0; b < blocks_; ++b) {
            // A few draws to land on a huge mapping; configurations
            // without guest THP simply never demote (or promote).
            for (int attempt = 0; attempt < 8; ++attempt) {
                const Addr gva = pickVa(sys);
                if (gva == invalid_addr)
                    return;
                const Translation g = sys.guestTranslate(gva);
                if (!g.valid || g.size != PageSize::Page2M)
                    continue;
                const Addr region = pageBase(gva, PageSize::Page2M);
                const Addr old_gpa = pageBase(g.pa, PageSize::Page2M);
                if (sys.thpDemote(gva) == 0)
                    continue;
                Invalidation inv;
                inv.gva = region;
                inv.bytes = pageBytes(PageSize::Page2M);
                inv.gpa = old_gpa;
                inv.gpa_bytes = inv.bytes;
                inv.kind = InvalKind::Demote;
                ctrl.queueInvalidation(inv);
                ctrl.noteChurnOp(ChurnOp::ThpDemote, 1);
                split.push_back(region);
                break;
            }
        }
    } else {
        // Promote only regions this compactor split earlier: 4KB-only
        // configurations stay 4KB-only.
        for (const Addr region : split) {
            if (sys.thpPromote(region) == 0)
                continue;
            Invalidation inv;
            inv.gva = region;
            inv.bytes = pageBytes(PageSize::Page2M);
            inv.kind = InvalKind::Promote;
            ctrl.queueInvalidation(inv);
            ctrl.noteChurnOp(ChurnOp::ThpPromote, 1);
        }
        split.clear();
    }
    demoting = !demoting;
}

void
ProtectScrubber::fire(NestedSystem &sys, CoherenceController &ctrl)
{
    for (int i = 0; i < pages_; ++i) {
        const Addr gva = pickVa(sys);
        if (gva == invalid_addr)
            return;
        const Translation g = sys.guestTranslate(gva);
        if (!g.valid || !sys.writeProtectPage(gva))
            continue;
        Invalidation inv;
        inv.gva = pageBase(gva, g.size);
        inv.bytes = pageBytes(g.size);
        inv.kind = InvalKind::Protect;
        ctrl.queueInvalidation(inv);
        ctrl.noteChurnOp(ChurnOp::Protect, pages4k(g.size));
    }
}

std::vector<std::unique_ptr<ChurnSource>>
makeChurnSources(const ChurnSpec &spec, std::uint64_t seed)
{
    // Fixed creation order + splitmix-derived stream per source: the
    // victim sequences are a pure function of (spec, seed), and arming
    // one source never shifts another's draws.
    std::uint64_t sm = seed ^ 0xC0'7E2E'0CEULL;
    std::vector<std::unique_ptr<ChurnSource>> sources;
    const std::uint64_t migrate_seed = splitmix64(sm);
    const std::uint64_t balloon_seed = splitmix64(sm);
    const std::uint64_t thp_seed = splitmix64(sm);
    const std::uint64_t protect_seed = splitmix64(sm);
    if (spec.migrate_period > 0)
        sources.push_back(std::make_unique<MigrationDaemon>(
            spec.migrate_period, spec.migrate_pages, migrate_seed));
    if (spec.balloon_period > 0)
        sources.push_back(std::make_unique<BalloonDriver>(
            spec.balloon_period, spec.balloon_pages, balloon_seed));
    if (spec.thp_period > 0)
        sources.push_back(std::make_unique<ThpCompactor>(
            spec.thp_period, spec.thp_blocks, thp_seed));
    if (spec.protect_period > 0)
        sources.push_back(std::make_unique<ProtectScrubber>(
            spec.protect_period, spec.protect_pages, protect_seed));
    return sources;
}

} // namespace necpt
