/**
 * @file
 * Workload interface and factory for the Table-4 applications.
 *
 * The paper drives full-system simulation with GraphBIG, HPCC GUPS,
 * BioBench MUMmer and SysBench binaries. We cannot boot those inside
 * this repo, so each workload is a deterministic *access-stream
 * generator* that reproduces the application's virtual-memory
 * behavior: region layout, footprint (scaled), sequential/random mix,
 * pointer-chasing depth, and skew. The generators allocate real VMAs
 * from the NestedSystem and emit guest-virtual addresses; the same
 * seed always yields the same stream, so every page-table
 * configuration sees identical traffic (the paper's deterministic
 * methodology, Section 8).
 */

#ifndef NECPT_WORKLOADS_WORKLOAD_HH
#define NECPT_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "os/system.hh"

namespace necpt
{

/** One memory reference in a workload trace. */
struct MemAccess
{
    Addr vaddr;            //!< guest-virtual byte address
    bool write = false;
    std::uint8_t inst_gap = 3; //!< non-memory instructions before it
};

/**
 * Abstract deterministic access-stream generator.
 */
class Workload
{
  public:
    struct Info
    {
        std::string name;
        std::string domain;
        std::string suite;
        std::uint64_t footprint_bytes; //!< scaled footprint
        std::uint64_t paper_footprint_bytes; //!< Table-4 value
    };

    virtual ~Workload() = default;

    virtual Info info() const = 0;

    /** Reserve VMAs and initialize generator state. */
    virtual void setup(NestedSystem &sys) = 0;

    /** Produce the next access of the deterministic stream. */
    virtual MemAccess next() = 0;

  protected:
    explicit Workload(std::uint64_t seed) : rng(seed) {}

    Rng rng;
};

/** The Table-4 application names, in paper order. */
const std::vector<std::string> &paperApplications();

/**
 * Build a workload by name ("BC", "BFS", ..., "GUPS", "MUMmer",
 * "SysBench").
 *
 * @param scale_denominator footprints are Table-4 sizes divided by
 *        this (default 32 keeps the full suite simulable in minutes
 *        while preserving footprint >> TLB-reach).
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       std::uint64_t scale_denominator = 32,
                                       std::uint64_t seed = 0xB0B);

} // namespace necpt

#endif // NECPT_WORKLOADS_WORKLOAD_HH
