/**
 * @file
 * GraphBIG-style graph-analytics workloads (Table 4) over a synthetic
 * power-law CSR graph.
 *
 * The graph is laid out the way GraphBIG lays out its in-memory CSR:
 * an offset array, an edge-target array, and one or more per-vertex
 * property arrays. Edge targets are generated on the fly from a
 * deterministic hash with a configurable popularity skew, so no edge
 * list is materialized in simulator memory. Each algorithm walks this
 * layout with its own characteristic mixture of sequential streaming,
 * random property access, and dependent pointer chasing.
 */

#ifndef NECPT_WORKLOADS_GRAPH_HH
#define NECPT_WORKLOADS_GRAPH_HH

#include <array>

#include "workloads/workload.hh"

namespace necpt
{

/** The eight GraphBIG kernels evaluated in the paper. */
enum class GraphKernel
{
    BC,   //!< Betweenness Centrality
    BFS,  //!< Breadth-First Search
    CC,   //!< Connected Components
    DC,   //!< Degree Centrality
    DFS,  //!< Depth-First Search
    PR,   //!< PageRank
    SSSP, //!< Shortest Path
    TC,   //!< Triangle Count
};

/**
 * A GraphBIG kernel access-stream generator.
 */
class GraphWorkload : public Workload
{
  public:
    GraphWorkload(GraphKernel kernel, std::uint64_t footprint_bytes,
                  std::uint64_t paper_footprint_bytes, std::uint64_t seed);

    Info info() const override;
    void setup(NestedSystem &sys) override;
    MemAccess next() override;

    std::uint64_t numVertices() const { return vertices; }
    std::uint64_t degree() const { return deg; }

  private:
    /** Deterministic neighbor: the @p i 'th target of vertex @p u. */
    std::uint64_t target(std::uint64_t u, std::uint64_t i) const;

    Addr offsetAddr(std::uint64_t u) const
    {
        return offsets_base + u * 8;
    }
    Addr edgeAddr(std::uint64_t u, std::uint64_t i) const
    {
        return edges_base + (u * deg + i) * 8;
    }
    Addr propAddr(int array, std::uint64_t u) const
    {
        return prop_base[array] + u * 8;
    }

    MemAccess read(Addr a, std::uint8_t gap = 3)
    {
        return {a, false, gap};
    }
    MemAccess write(Addr a, std::uint8_t gap = 3)
    {
        return {a, true, gap};
    }

    GraphKernel kernel;
    std::uint64_t footprint;
    std::uint64_t paper_footprint;

    std::uint64_t vertices = 0;
    std::uint64_t deg = 16;
    int num_props = 1;
    double skew = 0.2; //!< popularity skew of edge targets

    Addr offsets_base = 0;
    Addr edges_base = 0;
    std::array<Addr, 4> prop_base{};

    /// @name Walk state machine
    /// @{
    std::uint64_t cur_vertex = 0;
    std::uint64_t cur_edge = 0;
    std::uint64_t chase_vertex = 0; //!< DFS/TC pointer-chase cursor
    int phase = 0;
    /// @}
};

} // namespace necpt

#endif // NECPT_WORKLOADS_GRAPH_HH
