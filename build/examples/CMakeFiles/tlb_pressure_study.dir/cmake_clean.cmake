file(REMOVE_RECURSE
  "CMakeFiles/tlb_pressure_study.dir/tlb_pressure_study.cpp.o"
  "CMakeFiles/tlb_pressure_study.dir/tlb_pressure_study.cpp.o.d"
  "tlb_pressure_study"
  "tlb_pressure_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlb_pressure_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
