# Empty compiler generated dependencies file for tlb_pressure_study.
# This may be replaced when dependencies are built.
