file(REMOVE_RECURSE
  "CMakeFiles/hybrid_migration.dir/hybrid_migration.cpp.o"
  "CMakeFiles/hybrid_migration.dir/hybrid_migration.cpp.o.d"
  "hybrid_migration"
  "hybrid_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
