# Empty compiler generated dependencies file for bench_ablation_5level.
# This may be replaced when dependencies are built.
