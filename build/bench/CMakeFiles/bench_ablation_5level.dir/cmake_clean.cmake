file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_5level.dir/bench_ablation_5level.cc.o"
  "CMakeFiles/bench_ablation_5level.dir/bench_ablation_5level.cc.o.d"
  "bench_ablation_5level"
  "bench_ablation_5level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_5level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
