# Empty compiler generated dependencies file for bench_multicore_scaling.
# This may be replaced when dependencies are built.
