file(REMOVE_RECURSE
  "CMakeFiles/bench_multicore_scaling.dir/bench_multicore_scaling.cc.o"
  "CMakeFiles/bench_multicore_scaling.dir/bench_multicore_scaling.cc.o.d"
  "bench_multicore_scaling"
  "bench_multicore_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicore_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
