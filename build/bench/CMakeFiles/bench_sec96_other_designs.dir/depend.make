# Empty dependencies file for bench_sec96_other_designs.
# This may be replaced when dependencies are built.
