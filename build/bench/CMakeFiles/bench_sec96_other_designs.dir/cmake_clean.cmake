file(REMOVE_RECURSE
  "CMakeFiles/bench_sec96_other_designs.dir/bench_sec96_other_designs.cc.o"
  "CMakeFiles/bench_sec96_other_designs.dir/bench_sec96_other_designs.cc.o.d"
  "bench_sec96_other_designs"
  "bench_sec96_other_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec96_other_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
