# Empty dependencies file for bench_sec94_stc_sweep.
# This may be replaced when dependencies are built.
