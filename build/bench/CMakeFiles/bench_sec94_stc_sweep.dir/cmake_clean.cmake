file(REMOVE_RECURSE
  "CMakeFiles/bench_sec94_stc_sweep.dir/bench_sec94_stc_sweep.cc.o"
  "CMakeFiles/bench_sec94_stc_sweep.dir/bench_sec94_stc_sweep.cc.o.d"
  "bench_sec94_stc_sweep"
  "bench_sec94_stc_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec94_stc_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
