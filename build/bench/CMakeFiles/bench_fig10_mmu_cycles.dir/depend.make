# Empty dependencies file for bench_fig10_mmu_cycles.
# This may be replaced when dependencies are built.
