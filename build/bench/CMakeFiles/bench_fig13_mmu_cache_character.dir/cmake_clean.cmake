file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_mmu_cache_character.dir/bench_fig13_mmu_cache_character.cc.o"
  "CMakeFiles/bench_fig13_mmu_cache_character.dir/bench_fig13_mmu_cache_character.cc.o.d"
  "bench_fig13_mmu_cache_character"
  "bench_fig13_mmu_cache_character.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_mmu_cache_character.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
