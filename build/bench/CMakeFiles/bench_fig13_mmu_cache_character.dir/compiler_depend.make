# Empty compiler generated dependencies file for bench_fig13_mmu_cache_character.
# This may be replaced when dependencies are built.
