file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_adaptive_hit_rates.dir/bench_fig12_adaptive_hit_rates.cc.o"
  "CMakeFiles/bench_fig12_adaptive_hit_rates.dir/bench_fig12_adaptive_hit_rates.cc.o.d"
  "bench_fig12_adaptive_hit_rates"
  "bench_fig12_adaptive_hit_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_adaptive_hit_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
