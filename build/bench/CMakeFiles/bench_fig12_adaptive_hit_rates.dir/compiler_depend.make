# Empty compiler generated dependencies file for bench_fig12_adaptive_hit_rates.
# This may be replaced when dependencies are built.
