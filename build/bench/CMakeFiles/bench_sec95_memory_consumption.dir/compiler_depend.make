# Empty compiler generated dependencies file for bench_sec95_memory_consumption.
# This may be replaced when dependencies are built.
