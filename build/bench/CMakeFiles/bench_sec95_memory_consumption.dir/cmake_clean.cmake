file(REMOVE_RECURSE
  "CMakeFiles/bench_sec95_memory_consumption.dir/bench_sec95_memory_consumption.cc.o"
  "CMakeFiles/bench_sec95_memory_consumption.dir/bench_sec95_memory_consumption.cc.o.d"
  "bench_sec95_memory_consumption"
  "bench_sec95_memory_consumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec95_memory_consumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
