# Empty dependencies file for bench_table4_applications.
# This may be replaced when dependencies are built.
