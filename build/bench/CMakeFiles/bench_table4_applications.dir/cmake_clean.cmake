file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_applications.dir/bench_table4_applications.cc.o"
  "CMakeFiles/bench_table4_applications.dir/bench_table4_applications.cc.o.d"
  "bench_table4_applications"
  "bench_table4_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
