file(REMOVE_RECURSE
  "libnecpt_os.a"
)
