file(REMOVE_RECURSE
  "CMakeFiles/necpt_os.dir/phys_pool.cc.o"
  "CMakeFiles/necpt_os.dir/phys_pool.cc.o.d"
  "CMakeFiles/necpt_os.dir/system.cc.o"
  "CMakeFiles/necpt_os.dir/system.cc.o.d"
  "libnecpt_os.a"
  "libnecpt_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/necpt_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
