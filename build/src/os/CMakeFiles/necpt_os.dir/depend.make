# Empty dependencies file for necpt_os.
# This may be replaced when dependencies are built.
