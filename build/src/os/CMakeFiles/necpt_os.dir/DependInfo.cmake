
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/phys_pool.cc" "src/os/CMakeFiles/necpt_os.dir/phys_pool.cc.o" "gcc" "src/os/CMakeFiles/necpt_os.dir/phys_pool.cc.o.d"
  "/root/repo/src/os/system.cc" "src/os/CMakeFiles/necpt_os.dir/system.cc.o" "gcc" "src/os/CMakeFiles/necpt_os.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/necpt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/necpt_pt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
