# Empty dependencies file for necpt_mmu.
# This may be replaced when dependencies are built.
