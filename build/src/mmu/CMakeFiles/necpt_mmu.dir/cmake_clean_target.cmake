file(REMOVE_RECURSE
  "libnecpt_mmu.a"
)
