file(REMOVE_RECURSE
  "CMakeFiles/necpt_mmu.dir/cwc.cc.o"
  "CMakeFiles/necpt_mmu.dir/cwc.cc.o.d"
  "CMakeFiles/necpt_mmu.dir/pom_tlb.cc.o"
  "CMakeFiles/necpt_mmu.dir/pom_tlb.cc.o.d"
  "CMakeFiles/necpt_mmu.dir/tlb.cc.o"
  "CMakeFiles/necpt_mmu.dir/tlb.cc.o.d"
  "libnecpt_mmu.a"
  "libnecpt_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/necpt_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
