# Empty dependencies file for necpt_sim.
# This may be replaced when dependencies are built.
