file(REMOVE_RECURSE
  "CMakeFiles/necpt_sim.dir/cacti_lite.cc.o"
  "CMakeFiles/necpt_sim.dir/cacti_lite.cc.o.d"
  "CMakeFiles/necpt_sim.dir/config.cc.o"
  "CMakeFiles/necpt_sim.dir/config.cc.o.d"
  "CMakeFiles/necpt_sim.dir/experiment.cc.o"
  "CMakeFiles/necpt_sim.dir/experiment.cc.o.d"
  "CMakeFiles/necpt_sim.dir/report.cc.o"
  "CMakeFiles/necpt_sim.dir/report.cc.o.d"
  "CMakeFiles/necpt_sim.dir/simulator.cc.o"
  "CMakeFiles/necpt_sim.dir/simulator.cc.o.d"
  "libnecpt_sim.a"
  "libnecpt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/necpt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
