file(REMOVE_RECURSE
  "libnecpt_sim.a"
)
