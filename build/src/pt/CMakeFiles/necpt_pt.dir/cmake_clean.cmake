file(REMOVE_RECURSE
  "CMakeFiles/necpt_pt.dir/cwt.cc.o"
  "CMakeFiles/necpt_pt.dir/cwt.cc.o.d"
  "CMakeFiles/necpt_pt.dir/ecpt.cc.o"
  "CMakeFiles/necpt_pt.dir/ecpt.cc.o.d"
  "CMakeFiles/necpt_pt.dir/flat.cc.o"
  "CMakeFiles/necpt_pt.dir/flat.cc.o.d"
  "CMakeFiles/necpt_pt.dir/hashed.cc.o"
  "CMakeFiles/necpt_pt.dir/hashed.cc.o.d"
  "CMakeFiles/necpt_pt.dir/radix.cc.o"
  "CMakeFiles/necpt_pt.dir/radix.cc.o.d"
  "libnecpt_pt.a"
  "libnecpt_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/necpt_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
