
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pt/cwt.cc" "src/pt/CMakeFiles/necpt_pt.dir/cwt.cc.o" "gcc" "src/pt/CMakeFiles/necpt_pt.dir/cwt.cc.o.d"
  "/root/repo/src/pt/ecpt.cc" "src/pt/CMakeFiles/necpt_pt.dir/ecpt.cc.o" "gcc" "src/pt/CMakeFiles/necpt_pt.dir/ecpt.cc.o.d"
  "/root/repo/src/pt/flat.cc" "src/pt/CMakeFiles/necpt_pt.dir/flat.cc.o" "gcc" "src/pt/CMakeFiles/necpt_pt.dir/flat.cc.o.d"
  "/root/repo/src/pt/hashed.cc" "src/pt/CMakeFiles/necpt_pt.dir/hashed.cc.o" "gcc" "src/pt/CMakeFiles/necpt_pt.dir/hashed.cc.o.d"
  "/root/repo/src/pt/radix.cc" "src/pt/CMakeFiles/necpt_pt.dir/radix.cc.o" "gcc" "src/pt/CMakeFiles/necpt_pt.dir/radix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/necpt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
