file(REMOVE_RECURSE
  "libnecpt_pt.a"
)
