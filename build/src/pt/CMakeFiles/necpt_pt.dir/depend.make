# Empty dependencies file for necpt_pt.
# This may be replaced when dependencies are built.
