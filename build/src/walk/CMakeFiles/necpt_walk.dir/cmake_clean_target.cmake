file(REMOVE_RECURSE
  "libnecpt_walk.a"
)
