# Empty compiler generated dependencies file for necpt_walk.
# This may be replaced when dependencies are built.
