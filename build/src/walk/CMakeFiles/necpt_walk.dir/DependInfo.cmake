
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/walk/baselines.cc" "src/walk/CMakeFiles/necpt_walk.dir/baselines.cc.o" "gcc" "src/walk/CMakeFiles/necpt_walk.dir/baselines.cc.o.d"
  "/root/repo/src/walk/hybrid.cc" "src/walk/CMakeFiles/necpt_walk.dir/hybrid.cc.o" "gcc" "src/walk/CMakeFiles/necpt_walk.dir/hybrid.cc.o.d"
  "/root/repo/src/walk/native_ecpt.cc" "src/walk/CMakeFiles/necpt_walk.dir/native_ecpt.cc.o" "gcc" "src/walk/CMakeFiles/necpt_walk.dir/native_ecpt.cc.o.d"
  "/root/repo/src/walk/native_radix.cc" "src/walk/CMakeFiles/necpt_walk.dir/native_radix.cc.o" "gcc" "src/walk/CMakeFiles/necpt_walk.dir/native_radix.cc.o.d"
  "/root/repo/src/walk/nested_ecpt.cc" "src/walk/CMakeFiles/necpt_walk.dir/nested_ecpt.cc.o" "gcc" "src/walk/CMakeFiles/necpt_walk.dir/nested_ecpt.cc.o.d"
  "/root/repo/src/walk/nested_hpt.cc" "src/walk/CMakeFiles/necpt_walk.dir/nested_hpt.cc.o" "gcc" "src/walk/CMakeFiles/necpt_walk.dir/nested_hpt.cc.o.d"
  "/root/repo/src/walk/nested_radix.cc" "src/walk/CMakeFiles/necpt_walk.dir/nested_radix.cc.o" "gcc" "src/walk/CMakeFiles/necpt_walk.dir/nested_radix.cc.o.d"
  "/root/repo/src/walk/plan.cc" "src/walk/CMakeFiles/necpt_walk.dir/plan.cc.o" "gcc" "src/walk/CMakeFiles/necpt_walk.dir/plan.cc.o.d"
  "/root/repo/src/walk/shadow.cc" "src/walk/CMakeFiles/necpt_walk.dir/shadow.cc.o" "gcc" "src/walk/CMakeFiles/necpt_walk.dir/shadow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/necpt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/necpt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/necpt_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/necpt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/necpt_pt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
