file(REMOVE_RECURSE
  "CMakeFiles/necpt_walk.dir/baselines.cc.o"
  "CMakeFiles/necpt_walk.dir/baselines.cc.o.d"
  "CMakeFiles/necpt_walk.dir/hybrid.cc.o"
  "CMakeFiles/necpt_walk.dir/hybrid.cc.o.d"
  "CMakeFiles/necpt_walk.dir/native_ecpt.cc.o"
  "CMakeFiles/necpt_walk.dir/native_ecpt.cc.o.d"
  "CMakeFiles/necpt_walk.dir/native_radix.cc.o"
  "CMakeFiles/necpt_walk.dir/native_radix.cc.o.d"
  "CMakeFiles/necpt_walk.dir/nested_ecpt.cc.o"
  "CMakeFiles/necpt_walk.dir/nested_ecpt.cc.o.d"
  "CMakeFiles/necpt_walk.dir/nested_hpt.cc.o"
  "CMakeFiles/necpt_walk.dir/nested_hpt.cc.o.d"
  "CMakeFiles/necpt_walk.dir/nested_radix.cc.o"
  "CMakeFiles/necpt_walk.dir/nested_radix.cc.o.d"
  "CMakeFiles/necpt_walk.dir/plan.cc.o"
  "CMakeFiles/necpt_walk.dir/plan.cc.o.d"
  "CMakeFiles/necpt_walk.dir/shadow.cc.o"
  "CMakeFiles/necpt_walk.dir/shadow.cc.o.d"
  "libnecpt_walk.a"
  "libnecpt_walk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/necpt_walk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
