file(REMOVE_RECURSE
  "CMakeFiles/necpt_mem.dir/cache.cc.o"
  "CMakeFiles/necpt_mem.dir/cache.cc.o.d"
  "CMakeFiles/necpt_mem.dir/dram.cc.o"
  "CMakeFiles/necpt_mem.dir/dram.cc.o.d"
  "CMakeFiles/necpt_mem.dir/hierarchy.cc.o"
  "CMakeFiles/necpt_mem.dir/hierarchy.cc.o.d"
  "libnecpt_mem.a"
  "libnecpt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/necpt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
