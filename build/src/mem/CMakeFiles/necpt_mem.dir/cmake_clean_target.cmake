file(REMOVE_RECURSE
  "libnecpt_mem.a"
)
