# Empty dependencies file for necpt_mem.
# This may be replaced when dependencies are built.
