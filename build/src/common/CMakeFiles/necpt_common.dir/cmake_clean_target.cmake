file(REMOVE_RECURSE
  "libnecpt_common.a"
)
