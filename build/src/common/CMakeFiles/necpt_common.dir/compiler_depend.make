# Empty compiler generated dependencies file for necpt_common.
# This may be replaced when dependencies are built.
