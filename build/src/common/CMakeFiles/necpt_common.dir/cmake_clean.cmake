file(REMOVE_RECURSE
  "CMakeFiles/necpt_common.dir/hash.cc.o"
  "CMakeFiles/necpt_common.dir/hash.cc.o.d"
  "CMakeFiles/necpt_common.dir/rng.cc.o"
  "CMakeFiles/necpt_common.dir/rng.cc.o.d"
  "CMakeFiles/necpt_common.dir/stats.cc.o"
  "CMakeFiles/necpt_common.dir/stats.cc.o.d"
  "libnecpt_common.a"
  "libnecpt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/necpt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
