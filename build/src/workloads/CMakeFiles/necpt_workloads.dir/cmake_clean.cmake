file(REMOVE_RECURSE
  "CMakeFiles/necpt_workloads.dir/factory.cc.o"
  "CMakeFiles/necpt_workloads.dir/factory.cc.o.d"
  "CMakeFiles/necpt_workloads.dir/graph.cc.o"
  "CMakeFiles/necpt_workloads.dir/graph.cc.o.d"
  "CMakeFiles/necpt_workloads.dir/others.cc.o"
  "CMakeFiles/necpt_workloads.dir/others.cc.o.d"
  "CMakeFiles/necpt_workloads.dir/trace.cc.o"
  "CMakeFiles/necpt_workloads.dir/trace.cc.o.d"
  "libnecpt_workloads.a"
  "libnecpt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/necpt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
