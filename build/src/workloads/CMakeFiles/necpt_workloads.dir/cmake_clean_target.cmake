file(REMOVE_RECURSE
  "libnecpt_workloads.a"
)
