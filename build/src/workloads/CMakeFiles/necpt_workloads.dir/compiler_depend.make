# Empty compiler generated dependencies file for necpt_workloads.
# This may be replaced when dependencies are built.
