
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/factory.cc" "src/workloads/CMakeFiles/necpt_workloads.dir/factory.cc.o" "gcc" "src/workloads/CMakeFiles/necpt_workloads.dir/factory.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/workloads/CMakeFiles/necpt_workloads.dir/graph.cc.o" "gcc" "src/workloads/CMakeFiles/necpt_workloads.dir/graph.cc.o.d"
  "/root/repo/src/workloads/others.cc" "src/workloads/CMakeFiles/necpt_workloads.dir/others.cc.o" "gcc" "src/workloads/CMakeFiles/necpt_workloads.dir/others.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/workloads/CMakeFiles/necpt_workloads.dir/trace.cc.o" "gcc" "src/workloads/CMakeFiles/necpt_workloads.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/necpt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/necpt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/necpt_pt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
