file(REMOVE_RECURSE
  "CMakeFiles/necpt-run.dir/necpt_run.cc.o"
  "CMakeFiles/necpt-run.dir/necpt_run.cc.o.d"
  "necpt-run"
  "necpt-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/necpt-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
