# Empty dependencies file for necpt-run.
# This may be replaced when dependencies are built.
