# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitops[1]_include.cmake")
include("/root/repo/build/tests/test_cacti_config[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_cuckoo[1]_include.cmake")
include("/root/repo/build/tests/test_cwt[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_ecpt[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_flat_hashed[1]_include.cmake")
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_mmu[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_plan[1]_include.cmake")
include("/root/repo/build/tests/test_radix[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_walker_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_walkers[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
