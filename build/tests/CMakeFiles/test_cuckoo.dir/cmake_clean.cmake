file(REMOVE_RECURSE
  "CMakeFiles/test_cuckoo.dir/test_cuckoo.cc.o"
  "CMakeFiles/test_cuckoo.dir/test_cuckoo.cc.o.d"
  "test_cuckoo"
  "test_cuckoo.pdb"
  "test_cuckoo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuckoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
