# Empty compiler generated dependencies file for test_cuckoo.
# This may be replaced when dependencies are built.
