# Empty dependencies file for test_flat_hashed.
# This may be replaced when dependencies are built.
