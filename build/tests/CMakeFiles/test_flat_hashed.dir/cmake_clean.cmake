file(REMOVE_RECURSE
  "CMakeFiles/test_flat_hashed.dir/test_flat_hashed.cc.o"
  "CMakeFiles/test_flat_hashed.dir/test_flat_hashed.cc.o.d"
  "test_flat_hashed"
  "test_flat_hashed.pdb"
  "test_flat_hashed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flat_hashed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
