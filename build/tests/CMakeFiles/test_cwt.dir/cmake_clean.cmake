file(REMOVE_RECURSE
  "CMakeFiles/test_cwt.dir/test_cwt.cc.o"
  "CMakeFiles/test_cwt.dir/test_cwt.cc.o.d"
  "test_cwt"
  "test_cwt.pdb"
  "test_cwt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cwt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
