# Empty dependencies file for test_cwt.
# This may be replaced when dependencies are built.
