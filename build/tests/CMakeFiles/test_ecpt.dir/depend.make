# Empty dependencies file for test_ecpt.
# This may be replaced when dependencies are built.
