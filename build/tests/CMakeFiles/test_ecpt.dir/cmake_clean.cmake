file(REMOVE_RECURSE
  "CMakeFiles/test_ecpt.dir/test_ecpt.cc.o"
  "CMakeFiles/test_ecpt.dir/test_ecpt.cc.o.d"
  "test_ecpt"
  "test_ecpt.pdb"
  "test_ecpt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
