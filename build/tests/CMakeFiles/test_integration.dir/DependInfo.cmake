
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/test_integration.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/test_integration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/necpt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/walk/CMakeFiles/necpt_walk.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/necpt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/necpt_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/necpt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/necpt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/pt/CMakeFiles/necpt_pt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/necpt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
