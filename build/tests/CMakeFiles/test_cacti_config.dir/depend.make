# Empty dependencies file for test_cacti_config.
# This may be replaced when dependencies are built.
