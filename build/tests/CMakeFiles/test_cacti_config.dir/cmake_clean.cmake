file(REMOVE_RECURSE
  "CMakeFiles/test_cacti_config.dir/test_cacti_config.cc.o"
  "CMakeFiles/test_cacti_config.dir/test_cacti_config.cc.o.d"
  "test_cacti_config"
  "test_cacti_config.pdb"
  "test_cacti_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cacti_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
