file(REMOVE_RECURSE
  "CMakeFiles/test_walker_matrix.dir/test_walker_matrix.cc.o"
  "CMakeFiles/test_walker_matrix.dir/test_walker_matrix.cc.o.d"
  "test_walker_matrix"
  "test_walker_matrix.pdb"
  "test_walker_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_walker_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
