# Empty dependencies file for test_walker_matrix.
# This may be replaced when dependencies are built.
